//! The recovery reader: snapshot + log tail → register state.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use hts_types::{ObjectId, Tag, Value};

use crate::record::WalRecord;
use crate::segment::{list_segments, read_segment};
use crate::snapshot::{list_snapshots, read_snapshot};

/// Everything recovery reconstructed from a log directory.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// The highest-tag committed value per object.
    pub state: BTreeMap<ObjectId, (Tag, Value)>,
    /// Log records replayed (after the snapshot, if any).
    pub records_replayed: u64,
    /// Valid snapshots folded in.
    pub snapshots_loaded: u32,
    /// `true` when some segment ended in a torn or corrupt frame
    /// (replay stopped cleanly at the last valid record).
    pub torn_tail: bool,
    /// `true` when the directory held any log artifacts at all — the
    /// marker distinguishing a *restart* (rejoin the ring, resync) from
    /// a first boot.
    pub had_log: bool,
}

impl Recovery {
    /// The recovered state as a flat record list (snapshot input shape).
    pub fn to_records(&self) -> Vec<WalRecord> {
        self.state
            .iter()
            .map(|(object, (tag, value))| WalRecord {
                object: *object,
                tag: *tag,
                value: value.clone(),
            })
            .collect()
    }

    fn apply(&mut self, record: WalRecord) {
        match self.state.get_mut(&record.object) {
            Some((tag, value)) if *tag < record.tag => {
                *tag = record.tag;
                *value = record.value;
            }
            Some(_) => {} // stale replay: tags order all writes
            None => {
                self.state.insert(record.object, (record.tag, record.value));
            }
        }
    }
}

/// Rebuilds register state from a log directory: folds every valid
/// snapshot, then replays every segment in sequence order, keeping the
/// highest tag per object (replay is idempotent because tags totally
/// order writes, so overlapping snapshots and segments are harmless).
/// Stops cleanly at the first bad CRC of each segment.
///
/// A missing directory recovers to the empty state with
/// [`Recovery::had_log`] `false`.
///
/// # Errors
///
/// Propagates I/O failures; corruption is never an error.
pub fn recover(dir: impl AsRef<Path>) -> io::Result<Recovery> {
    let dir = dir.as_ref();
    let mut recovery = Recovery::default();
    for (_, path) in list_snapshots(dir)? {
        recovery.had_log = true;
        if let Some((_, records)) = read_snapshot(&path) {
            recovery.snapshots_loaded += 1;
            for record in records {
                recovery.apply(record);
            }
        }
    }
    for (_, path) in list_segments(dir)? {
        recovery.had_log = true;
        let contents = read_segment(&path)?;
        recovery.torn_tail |= contents.torn;
        for record in contents.records {
            recovery.records_replayed += 1;
            recovery.apply(record);
        }
    }
    Ok(recovery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Wal, WalOptions};
    use hts_types::ServerId;
    use std::fs;
    use std::io::Write;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hts-wal-rec-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(object: u32, ts: u64, v: u64) -> WalRecord {
        WalRecord {
            object: ObjectId(object),
            tag: Tag::new(ts, ServerId(1)),
            value: Value::from_u64(v),
        }
    }

    #[test]
    fn missing_dir_is_a_first_boot() {
        let recovery = recover("/nonexistent/hts-wal-recovery").unwrap();
        assert!(!recovery.had_log);
        assert!(recovery.state.is_empty());
    }

    #[test]
    fn torn_tail_stops_at_last_valid_record() {
        let dir = tmp_dir("torn");
        let mut wal = Wal::open(&dir, WalOptions::default()).unwrap();
        wal.append(&rec(1, 1, 10)).unwrap();
        wal.append(&rec(1, 2, 20)).unwrap();
        drop(wal);
        // Tear the tail: chop bytes off the only segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let recovery = recover(&dir).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.records_replayed, 1);
        assert_eq!(
            recovery.state.get(&ObjectId(1)).unwrap().1,
            Value::from_u64(10)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_after_valid_records_is_ignored() {
        let dir = tmp_dir("garbage");
        let mut wal = Wal::open(&dir, WalOptions::default()).unwrap();
        wal.append(&rec(1, 1, 10)).unwrap();
        drop(wal);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x00, 0x00, 0x00, 0x01])
            .unwrap();
        drop(file);
        let recovery = recover(&dir).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.records_replayed, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_segments() {
        let dir = tmp_dir("snapfall");
        let options = WalOptions {
            segment_bytes: 1, // force compaction opportunities immediately
            ..WalOptions::default()
        };
        let mut wal = Wal::open(&dir, options).unwrap();
        wal.append(&rec(1, 1, 10)).unwrap();
        wal.compact(&[rec(1, 1, 10)]).unwrap();
        wal.append(&rec(1, 2, 20)).unwrap();
        drop(wal);
        // Corrupt the snapshot: state must still come from segments...
        let (_, snap) = list_snapshots(&dir).unwrap().pop().unwrap();
        fs::write(&snap, b"HTSSNAP1 not a snapshot").unwrap();
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.snapshots_loaded, 0);
        assert!(recovery.had_log);
        // ...which still hold the post-compaction append.
        assert_eq!(
            recovery.state.get(&ObjectId(1)).unwrap().1,
            Value::from_u64(20)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_records_never_overwrite_newer_tags() {
        let mut recovery = Recovery::default();
        recovery.apply(rec(1, 5, 50));
        recovery.apply(rec(1, 3, 30));
        assert_eq!(
            recovery.state.get(&ObjectId(1)).unwrap().1,
            Value::from_u64(50)
        );
    }
}
