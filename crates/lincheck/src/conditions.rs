//! A fast, register-specialized condition checker.
//!
//! Requires **unique written values** (the harnesses write distinct `u64`
//! payload prefixes). Sound but incomplete: every reported [`Violation`] is
//! a real linearizability violation, but exotic multi-hop inferences are not
//! attempted — use [`check_exhaustive`](crate::check_exhaustive) when an
//! exact verdict is required and the history is small.
//!
//! The conditions (for each completed read `r` with reads-from write `w`):
//!
//! 1. **reads-from exists** — `r`'s value was written by some operation (or
//!    is the initial `⊥`);
//! 2. **no future read** — `r` must not return before `w` is invoked;
//! 3. **no shadowed read** — there must be no write `w'` with
//!    `w < w' < r` in real time (then every linearization places `w'`
//!    between `w` and `r`, so `r` cannot return `w`'s value);
//! 4. **no inverted reads** — for completed reads `r1` really-before `r2`,
//!    `r2`'s write must not be forced before `r1`'s write (the paper's
//!    *read inversion*).

use std::collections::HashMap;

use crate::{History, OpId};

/// A concrete linearizability violation found by [`check_conditions`].
///
/// `OpId`s index into the checked [`History`]; `None` stands for the
/// initial value `⊥` pseudo-write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two writes wrote the same value: the checker's uniqueness
    /// precondition does not hold (fix the workload, not the algorithm).
    DuplicateWriteValues {
        /// First write.
        a: OpId,
        /// Second write with an identical value.
        b: OpId,
    },
    /// A read returned a value no write ever wrote.
    ReadOfUnwrittenValue {
        /// The offending read.
        read: OpId,
    },
    /// A read returned before the write of its value was even invoked.
    ReadFromFuture {
        /// The offending read.
        read: OpId,
        /// The write whose value it returned.
        write: OpId,
    },
    /// A read returned a value that was definitely overwritten before the
    /// read began: `write < shadow < read` in real time.
    ShadowedRead {
        /// The offending read.
        read: OpId,
        /// The write it read (`None` = initial `⊥`).
        write: Option<OpId>,
        /// The interposing write.
        shadow: OpId,
    },
    /// Two non-overlapping reads observed writes in the wrong order: the
    /// earlier read saw the newer write (read inversion).
    InvertedReads {
        /// The earlier read (returned first).
        earlier: OpId,
        /// The later read (invoked after `earlier` returned) that observed
        /// an older write.
        later: OpId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DuplicateWriteValues { a, b } => {
                write!(f, "writes #{} and #{} wrote identical values", a.0, b.0)
            }
            Violation::ReadOfUnwrittenValue { read } => {
                write!(f, "read #{} returned a never-written value", read.0)
            }
            Violation::ReadFromFuture { read, write } => write!(
                f,
                "read #{} returned before write #{} was invoked",
                read.0, write.0
            ),
            Violation::ShadowedRead {
                read,
                write,
                shadow,
            } => write!(
                f,
                "read #{} returned {} although write #{} definitely overwrote it first",
                read.0,
                match write {
                    Some(w) => format!("write #{}", w.0),
                    None => "the initial value".to_string(),
                },
                shadow.0
            ),
            Violation::InvertedReads { earlier, later } => write!(
                f,
                "read inversion: read #{} (earlier) saw a newer write than read #{} (later)",
                earlier.0, later.0
            ),
        }
    }
}

/// Checks the register conditions described in the [module docs](self).
///
/// Returns all violations found (empty ⇒ no violation *detected*; the check
/// is incomplete, see above). Written values must be unique; duplicates are
/// reported as [`Violation::DuplicateWriteValues`] and suppress the
/// remaining checks for the affected values.
pub fn check_conditions(history: &History) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Map written value -> write op id, detecting duplicates.
    let mut writes: HashMap<&[u8], OpId> = HashMap::new();
    for (id, rec) in history.iter() {
        if !rec.op.is_read() {
            let key = rec.op.value().as_bytes();
            if key.is_empty() {
                // A write of ⊥ collides with the initial value; treat as a
                // duplicate of the pseudo-write.
                violations.push(Violation::DuplicateWriteValues { a: id, b: id });
                continue;
            }
            if let Some(&first) = writes.get(key) {
                violations.push(Violation::DuplicateWriteValues { a: first, b: id });
            } else {
                writes.insert(key, id);
            }
        }
    }
    if !violations.is_empty() {
        return violations;
    }

    // Real instants are shifted by +1 so the initial ⊥ pseudo-write [0, 0]
    // strictly precedes every real operation, even those invoked at 0.
    let inv_of = |id: OpId| history.record(id).invoked_at.saturating_add(1);
    let ret_of = |id: OpId| history.record(id).effective_return().saturating_add(1);

    // Interval of a write; the initial ⊥ pseudo-write is [0, 0].
    let write_interval = |w: Option<OpId>| -> (u64, u64) {
        match w {
            None => (0, 0),
            Some(id) => (inv_of(id), ret_of(id)),
        }
    };

    // Reads-from mapping for completed reads.
    let mut reads: Vec<(OpId, Option<OpId>)> = Vec::new(); // (read, write)
    for (id, rec) in history.iter() {
        if rec.op.is_read() && rec.is_complete() {
            let v = rec.op.value();
            if v.is_bottom() {
                reads.push((id, None));
            } else {
                match writes.get(v.as_bytes()) {
                    Some(&w) => {
                        // Condition 2: no read from the future.
                        if ret_of(id) < inv_of(w) {
                            violations.push(Violation::ReadFromFuture { read: id, write: w });
                        }
                        reads.push((id, Some(w)));
                    }
                    None => violations.push(Violation::ReadOfUnwrittenValue { read: id }),
                }
            }
        }
    }

    // Condition 3: shadowed reads. For each read r (scanned by invocation
    // time), among *completed* writes w' with w'.ret < r.inv, find the one
    // with maximal invocation time; r is shadowed iff that maximum exceeds
    // rf(r)'s return.
    let mut completed_writes: Vec<(u64, u64, OpId)> = history // (ret, inv, id)
        .iter()
        .filter(|(_, rec)| !rec.op.is_read() && rec.is_complete())
        .map(|(id, _)| (ret_of(id), inv_of(id), id))
        .collect();
    completed_writes.sort_unstable();

    let mut reads_by_inv: Vec<(u64, usize)> = reads
        .iter()
        .enumerate()
        .map(|(idx, (rid, _))| (inv_of(*rid), idx))
        .collect();
    reads_by_inv.sort_unstable();

    {
        let mut wi = 0;
        let mut best: Option<(u64, OpId)> = None; // (max w'.inv, its id)
        for &(r_inv, idx) in &reads_by_inv {
            while wi < completed_writes.len() && completed_writes[wi].0 < r_inv {
                let (_, inv, id) = completed_writes[wi];
                if best.is_none_or(|(b, _)| inv > b) {
                    best = Some((inv, id));
                }
                wi += 1;
            }
            if let Some((max_inv, shadow)) = best {
                let (read, wfrom) = reads[idx];
                let (_, w_ret) = write_interval(wfrom);
                if max_inv > w_ret {
                    violations.push(Violation::ShadowedRead {
                        read,
                        write: wfrom,
                        shadow,
                    });
                }
            }
        }
    }

    // Condition 4: inverted reads. Scan reads r2 by invocation time while
    // absorbing reads r1 completed before r2.inv; track the r1 whose
    // reads-from write has the maximal invocation time. r2 is inverted iff
    // that maximum exceeds rf(r2)'s return.
    {
        let mut reads_by_ret: Vec<(u64, usize)> = reads
            .iter()
            .enumerate()
            .filter(|(_, (rid, _))| history.record(*rid).is_complete())
            .map(|(idx, (rid, _))| (ret_of(*rid), idx))
            .collect();
        reads_by_ret.sort_unstable();

        let mut ri = 0;
        let mut best: Option<(u64, usize)> = None; // (max w1.inv, read idx)
        for &(r2_inv, idx2) in &reads_by_inv {
            while ri < reads_by_ret.len() && reads_by_ret[ri].0 < r2_inv {
                let idx1 = reads_by_ret[ri].1;
                let (w1_inv, _) = write_interval(reads[idx1].1);
                if best.is_none_or(|(b, _)| w1_inv > b) {
                    best = Some((w1_inv, idx1));
                }
                ri += 1;
            }
            if let Some((max_w1_inv, idx1)) = best {
                let (r2, w2) = reads[idx2];
                let (_, w2_ret) = write_interval(w2);
                if max_w1_inv > w2_ret {
                    violations.push(Violation::InvertedReads {
                        earlier: reads[idx1].0,
                        later: r2,
                    });
                }
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_types::{ClientId, Value};

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    #[test]
    fn clean_sequential_history_passes() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w, 1);
        let r = h.invoke_read(ClientId(1), 2);
        h.complete_read(r, v(1), 3);
        assert!(check_conditions(&h).is_empty());
    }

    #[test]
    fn duplicate_writes_reported() {
        let mut h = History::new();
        let a = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(a, 1);
        let b = h.invoke_write(ClientId(1), v(1), 2);
        h.complete_write(b, 3);
        assert_eq!(
            check_conditions(&h),
            vec![Violation::DuplicateWriteValues { a, b }]
        );
    }

    #[test]
    fn unwritten_value_reported() {
        let mut h = History::new();
        let r = h.invoke_read(ClientId(0), 0);
        h.complete_read(r, v(9), 1);
        assert_eq!(
            check_conditions(&h),
            vec![Violation::ReadOfUnwrittenValue { read: r }]
        );
    }

    #[test]
    fn read_from_future_reported() {
        let mut h = History::new();
        let r = h.invoke_read(ClientId(0), 0);
        h.complete_read(r, v(1), 1);
        let w = h.invoke_write(ClientId(1), v(1), 5);
        h.complete_write(w, 6);
        let found = check_conditions(&h);
        assert!(found.contains(&Violation::ReadFromFuture { read: r, write: w }));
    }

    #[test]
    fn stale_read_is_shadowed_by_later_write() {
        // w1(1)=[0,1], w2(2)=[2,3], read=[4,5] -> 1 : w1 < w2 < r.
        let mut h = History::new();
        let w1 = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w1, 1);
        let w2 = h.invoke_write(ClientId(0), v(2), 2);
        h.complete_write(w2, 3);
        let r = h.invoke_read(ClientId(1), 4);
        h.complete_read(r, v(1), 5);
        let found = check_conditions(&h);
        assert_eq!(
            found,
            vec![Violation::ShadowedRead {
                read: r,
                write: Some(w1),
                shadow: w2
            }]
        );
    }

    #[test]
    fn stale_bottom_read_is_shadowed() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w, 1);
        let r = h.invoke_read(ClientId(1), 2);
        h.complete_read(r, Value::bottom(), 3);
        let found = check_conditions(&h);
        assert_eq!(
            found,
            vec![Violation::ShadowedRead {
                read: r,
                write: None,
                shadow: w
            }]
        );
    }

    #[test]
    fn read_inversion_reported() {
        // write(1) spans [0,100]; r1=[10,20] -> 1; r2=[30,40] -> ⊥.
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), v(1), 0);
        let r1 = h.invoke_read(ClientId(1), 10);
        h.complete_read(r1, v(1), 20);
        let r2 = h.invoke_read(ClientId(2), 30);
        h.complete_read(r2, Value::bottom(), 40);
        h.complete_write(w, 100);
        let found = check_conditions(&h);
        assert_eq!(
            found,
            vec![Violation::InvertedReads {
                earlier: r1,
                later: r2
            }]
        );
    }

    #[test]
    fn concurrent_reads_may_disagree() {
        // r1 and r2 overlap: either order of observed values is fine.
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), v(1), 0);
        let r1 = h.invoke_read(ClientId(1), 10);
        let r2 = h.invoke_read(ClientId(2), 11);
        h.complete_read(r1, v(1), 20);
        h.complete_read(r2, Value::bottom(), 21);
        h.complete_write(w, 100);
        assert!(check_conditions(&h).is_empty());
    }

    #[test]
    fn pending_write_observed_is_fine() {
        let mut h = History::new();
        h.invoke_write(ClientId(0), v(1), 0); // pending forever
        let r1 = h.invoke_read(ClientId(1), 5);
        h.complete_read(r1, v(1), 6);
        let r2 = h.invoke_read(ClientId(1), 7);
        h.complete_read(r2, v(1), 8);
        assert!(check_conditions(&h).is_empty());
    }

    #[test]
    fn monotone_reads_pass() {
        let mut h = History::new();
        let w1 = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w1, 1);
        let w2 = h.invoke_write(ClientId(0), v(2), 10);
        let r1 = h.invoke_read(ClientId(1), 11);
        h.complete_read(r1, v(1), 12); // w2 still pending: old value ok
        let r2 = h.invoke_read(ClientId(1), 13);
        h.complete_read(r2, v(2), 14); // then new value
        h.complete_write(w2, 20);
        assert!(check_conditions(&h).is_empty());
    }
}
