//! Operation histories.

use std::fmt;

use hts_types::{ClientId, Tag, Value};

/// Index of an operation within its [`History`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub usize);

/// What an operation did, from the client's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A write of the given value.
    Write(Value),
    /// A read; the payload is the value **returned** (set at completion).
    Read(Value),
}

impl Op {
    /// The value written or returned.
    pub fn value(&self) -> &Value {
        match self {
            Op::Write(v) | Op::Read(v) => v,
        }
    }

    /// Returns `true` for reads.
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Read(_))
    }
}

/// One recorded operation: who, what, and the real-time window in which it
/// was in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// The invoking client.
    pub client: ClientId,
    /// The operation and its payload. For a read that never completed the
    /// payload is `Value::bottom()` and is ignored by checkers.
    pub op: Op,
    /// Invocation instant (any monotone clock shared by all recorders).
    pub invoked_at: u64,
    /// Response instant; `None` while pending (e.g. the client crashed or
    /// the run ended first).
    pub returned_at: Option<u64>,
    /// Optional white-box witness: the tag this operation resolved to,
    /// reported by the implementation. Used by
    /// [`check_witnessed`](crate::check_witnessed) only.
    pub witness: Option<Tag>,
}

impl OpRecord {
    /// Returns `true` if the operation completed.
    pub fn is_complete(&self) -> bool {
        self.returned_at.is_some()
    }

    /// The response instant, treating pending operations as returning at
    /// the end of time (they may linearize arbitrarily late).
    pub fn effective_return(&self) -> u64 {
        self.returned_at.unwrap_or(u64::MAX)
    }

    /// Returns `true` if `self` precedes `other` in real time (`self`
    /// returned strictly before `other` was invoked).
    pub fn precedes(&self, other: &OpRecord) -> bool {
        self.effective_return() < other.invoked_at
    }
}

/// A concurrent history of register operations.
///
/// Build a history by bracketing each operation with an
/// `invoke_*`/`complete_*` pair; operations left pending are handled
/// correctly by the checkers (a pending write may or may not have taken
/// effect). Instants must come from one monotone clock shared by all
/// recording sites — in the simulator this is virtual time, in the TCP
/// runtime a single `Instant` origin.
///
/// # Examples
///
/// ```
/// use hts_lincheck::History;
/// use hts_types::{ClientId, Value};
///
/// let mut h = History::new();
/// let w = h.invoke_write(ClientId(0), Value::from_u64(7), 100);
/// h.complete_write(w, 250);
/// assert_eq!(h.len(), 1);
/// assert!(h.record(w).is_complete());
/// ```
#[derive(Debug, Clone, Default)]
pub struct History {
    records: Vec<OpRecord>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Records a write invocation; returns its id for later completion.
    pub fn invoke_write(&mut self, client: ClientId, value: Value, at: u64) -> OpId {
        self.push(OpRecord {
            client,
            op: Op::Write(value),
            invoked_at: at,
            returned_at: None,
            witness: None,
        })
    }

    /// Records a read invocation; returns its id for later completion.
    pub fn invoke_read(&mut self, client: ClientId, at: u64) -> OpId {
        self.push(OpRecord {
            client,
            op: Op::Read(Value::bottom()),
            invoked_at: at,
            returned_at: None,
            witness: None,
        })
    }

    /// Marks a write as completed at instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a pending write of this history.
    pub fn complete_write(&mut self, id: OpId, at: u64) {
        let rec = &mut self.records[id.0];
        assert!(!rec.op.is_read(), "complete_write on a read");
        assert!(rec.returned_at.is_none(), "operation completed twice");
        assert!(at >= rec.invoked_at, "response precedes invocation");
        rec.returned_at = Some(at);
    }

    /// Marks a read as completed at instant `at`, returning `value`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a pending read of this history.
    pub fn complete_read(&mut self, id: OpId, value: Value, at: u64) {
        let rec = &mut self.records[id.0];
        assert!(rec.op.is_read(), "complete_read on a write");
        assert!(rec.returned_at.is_none(), "operation completed twice");
        assert!(at >= rec.invoked_at, "response precedes invocation");
        rec.op = Op::Read(value);
        rec.returned_at = Some(at);
    }

    /// Attaches a white-box tag witness to an operation.
    pub fn set_witness(&mut self, id: OpId, tag: Tag) {
        self.records[id.0].witness = Some(tag);
    }

    /// Appends a fully-formed record (useful for generators in tests).
    pub fn push(&mut self, record: OpRecord) -> OpId {
        let id = OpId(self.records.len());
        self.records.push(record);
        id
    }

    /// The number of recorded operations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrows one record.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn record(&self, id: OpId) -> &OpRecord {
        &self.records[id.0]
    }

    /// Iterates over `(OpId, &OpRecord)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &OpRecord)> {
        self.records.iter().enumerate().map(|(i, r)| (OpId(i), r))
    }

    /// All records as a slice.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Number of completed operations.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.is_complete()).count()
    }

    /// Drops pending operations that no completed operation could have
    /// observed — **only valid for pending reads**, which have no effect on
    /// other operations. Pending writes are kept (they may have taken
    /// effect).
    pub fn prune_pending_reads(&mut self) {
        self.records.retain(|r| r.is_complete() || !r.op.is_read());
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.records.iter().enumerate() {
            let ret = match r.returned_at {
                Some(t) => format!("{t}"),
                None => "⋯".to_string(),
            };
            let op = match &r.op {
                Op::Write(v) => format!("write({v:?})"),
                Op::Read(v) if r.is_complete() => format!("read -> {v:?}"),
                Op::Read(_) => "read -> ?".to_string(),
            };
            writeln!(
                f,
                "#{i:<4} {} [{} .. {}] {}",
                r.client, r.invoked_at, ret, op
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), Value::from_u64(1), 0);
        let r = h.invoke_read(ClientId(1), 1);
        h.complete_write(w, 4);
        h.complete_read(r, Value::from_u64(1), 6);
        assert_eq!(h.len(), 2);
        assert_eq!(h.completed(), 2);
        assert!(h.record(w).precedes(&OpRecord {
            client: ClientId(9),
            op: Op::Read(Value::bottom()),
            invoked_at: 5,
            returned_at: None,
            witness: None,
        }));
        assert!(!h.is_empty());
        assert_eq!(h.iter().count(), 2);
    }

    #[test]
    fn pending_ops_have_infinite_return() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), Value::from_u64(1), 10);
        let rec = h.record(w);
        assert!(!rec.is_complete());
        assert_eq!(rec.effective_return(), u64::MAX);
    }

    #[test]
    fn prune_pending_reads_keeps_pending_writes() {
        let mut h = History::new();
        h.invoke_write(ClientId(0), Value::from_u64(1), 0);
        h.invoke_read(ClientId(1), 1);
        let r = h.invoke_read(ClientId(2), 2);
        h.complete_read(r, Value::from_u64(1), 3);
        h.prune_pending_reads();
        assert_eq!(h.len(), 2); // pending write + completed read
        assert!(!h.records()[0].op.is_read());
    }

    #[test]
    #[should_panic(expected = "operation completed twice")]
    fn double_completion_panics() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), Value::from_u64(1), 0);
        h.complete_write(w, 1);
        h.complete_write(w, 2);
    }

    #[test]
    #[should_panic(expected = "complete_read on a write")]
    fn mismatched_completion_panics() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), Value::from_u64(1), 0);
        h.complete_read(w, Value::from_u64(1), 1);
    }

    #[test]
    fn display_contains_all_ops() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), Value::from_u64(1), 0);
        h.complete_write(w, 2);
        h.invoke_read(ClientId(1), 1);
        let s = h.to_string();
        assert!(s.contains("write"));
        assert!(s.contains("read -> ?"));
    }
}
