//! Exact, fast checking against implementation-provided tag witnesses.

use std::collections::HashMap;

use hts_types::Tag;

use crate::{History, Outcome};

/// Verifies a history against the implementation's own [`Tag`] witnesses.
///
/// The `hts` protocol orders all writes by tag; a white-box harness records,
/// for every operation, the tag it resolved to (the tag assigned to a write,
/// the tag of the value a read returned). If the induced total order — all
/// operations sorted by `(tag, writes-before-reads, invocation)` — respects
/// real-time precedence and register semantics, the history is linearizable
/// *with that order as the witness*; if it does not, **the tag order is not
/// a linearization** (the implementation violated its own ordering
/// contract), which for this protocol is a correctness bug even when some
/// other linearization might exist.
///
/// `O(n log n)`. Every completed operation must carry a witness; writes'
/// witnesses must be unique; a read's witness must be [`Tag::ZERO`] (initial
/// value) or the witness of some write whose value it returned.
pub fn check_witnessed(history: &History) -> Outcome {
    // Collect completed ops; pending ops don't constrain the witness order.
    struct W {
        id: usize,
        inv: u64,
        ret: u64,
        is_read: bool,
        tag: Tag,
    }
    let mut ops: Vec<W> = Vec::new();
    let mut write_values: HashMap<Tag, &[u8]> = HashMap::new();
    let mut pending_write_values: Vec<&[u8]> = Vec::new();

    for (id, rec) in history.iter() {
        if !rec.is_complete() {
            if !rec.op.is_read() {
                pending_write_values.push(rec.op.value().as_bytes());
            }
            continue;
        }
        let tag = match rec.witness {
            Some(t) => t,
            None => {
                return Outcome::NotLinearizable(format!(
                    "op #{} completed without a tag witness",
                    id.0
                ))
            }
        };
        if !rec.op.is_read() {
            if tag == Tag::ZERO {
                return Outcome::NotLinearizable(format!(
                    "write #{} carries the initial tag",
                    id.0
                ));
            }
            if write_values
                .insert(tag, rec.op.value().as_bytes())
                .is_some()
            {
                return Outcome::NotLinearizable(format!(
                    "two writes share tag {tag} (op #{})",
                    id.0
                ));
            }
        }
        ops.push(W {
            id: id.0,
            inv: rec.invoked_at,
            ret: rec.effective_return(),
            is_read: rec.op.is_read(),
            tag,
        });
    }

    // Reads must return the value their witness tag names.
    for op in ops.iter().filter(|o| o.is_read) {
        let rec = history.record(crate::OpId(op.id));
        let returned = rec.op.value().as_bytes();
        if op.tag == Tag::ZERO {
            if !returned.is_empty() {
                return Outcome::NotLinearizable(format!(
                    "read #{} claims the initial tag but returned a non-⊥ value",
                    op.id
                ));
            }
        } else {
            match write_values.get(&op.tag) {
                Some(v) if *v == returned => {}
                Some(_) => {
                    return Outcome::NotLinearizable(format!(
                        "read #{} returned a value different from its witness write {}",
                        op.id, op.tag
                    ))
                }
                None if pending_write_values.contains(&returned) => {
                    // The read observed a write that never completed (its
                    // client crashed or the run ended): the pending write
                    // linearizes just before this read.
                }
                None => {
                    return Outcome::NotLinearizable(format!(
                        "read #{} witnesses tag {} but no write (completed or \
                         pending) wrote that value",
                        op.id, op.tag
                    ))
                }
            }
        }
    }

    // The candidate linearization: by tag, writes before their reads,
    // then by invocation time.
    ops.sort_by_key(|op| (op.tag, op.is_read, op.inv, op.id));

    // Real-time check: no operation may precede (in real time) an operation
    // ordered before it. Scan the candidate order keeping the latest
    // invocation seen; if some later-ordered op returned before it, the
    // witness order contradicts real time.
    let mut max_inv_so_far: Option<(u64, usize)> = None;
    for op in &ops {
        if let Some((max_inv, culprit)) = max_inv_so_far {
            if op.ret < max_inv {
                return Outcome::NotLinearizable(format!(
                    "witness order violates real time: op #{} (tag {}) returned at {} \
                     before op #{} was invoked at {}",
                    op.id, op.tag, op.ret, culprit, max_inv
                ));
            }
        }
        if max_inv_so_far.is_none_or(|(m, _)| op.inv > m) {
            max_inv_so_far = Some((op.inv, op.id));
        }
    }

    Outcome::Linearizable
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_types::{ClientId, ServerId, Value};

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    fn t(ts: u64) -> Tag {
        Tag::new(ts, ServerId(0))
    }

    #[test]
    fn witnessed_sequential_history_passes() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w, 1);
        h.set_witness(w, t(1));
        let r = h.invoke_read(ClientId(1), 2);
        h.complete_read(r, v(1), 3);
        h.set_witness(r, t(1));
        assert_eq!(check_witnessed(&h), Outcome::Linearizable);
    }

    #[test]
    fn read_of_initial_value_passes() {
        let mut h = History::new();
        let r = h.invoke_read(ClientId(0), 0);
        h.complete_read(r, Value::bottom(), 1);
        h.set_witness(r, Tag::ZERO);
        assert_eq!(check_witnessed(&h), Outcome::Linearizable);
    }

    #[test]
    fn missing_witness_is_reported() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w, 1);
        assert!(!check_witnessed(&h).is_linearizable());
    }

    #[test]
    fn duplicate_write_tags_rejected() {
        let mut h = History::new();
        let a = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(a, 1);
        h.set_witness(a, t(1));
        let b = h.invoke_write(ClientId(1), v(2), 2);
        h.complete_write(b, 3);
        h.set_witness(b, t(1));
        assert!(!check_witnessed(&h).is_linearizable());
    }

    #[test]
    fn tag_order_contradicting_real_time_rejected() {
        // w1 gets the *higher* tag but strictly precedes w2 in real time.
        let mut h = History::new();
        let w1 = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w1, 1);
        h.set_witness(w1, t(2));
        let w2 = h.invoke_write(ClientId(1), v(2), 5);
        h.complete_write(w2, 6);
        h.set_witness(w2, t(1));
        assert!(!check_witnessed(&h).is_linearizable());
    }

    #[test]
    fn read_value_mismatching_witness_rejected() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w, 1);
        h.set_witness(w, t(1));
        let r = h.invoke_read(ClientId(1), 2);
        h.complete_read(r, v(9), 3);
        h.set_witness(r, t(1));
        assert!(!check_witnessed(&h).is_linearizable());
    }

    #[test]
    fn stale_read_detected_via_witness_order() {
        // w1(tag 1) then w2(tag 2) sequentially; later read witnesses tag 1:
        // candidate order w1 r w2 puts r before w2, but w2 returned before r
        // was invoked.
        let mut h = History::new();
        let w1 = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w1, 1);
        h.set_witness(w1, t(1));
        let w2 = h.invoke_write(ClientId(0), v(2), 2);
        h.complete_write(w2, 3);
        h.set_witness(w2, t(2));
        let r = h.invoke_read(ClientId(1), 4);
        h.complete_read(r, v(1), 5);
        h.set_witness(r, t(1));
        assert!(!check_witnessed(&h).is_linearizable());
    }

    #[test]
    fn concurrent_reads_any_tag_order_passes() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), v(1), 0);
        let r1 = h.invoke_read(ClientId(1), 2);
        h.complete_read(r1, v(1), 3);
        h.set_witness(r1, t(1));
        let r2 = h.invoke_read(ClientId(2), 4);
        h.complete_read(r2, v(1), 5);
        h.set_witness(r2, t(1));
        h.complete_write(w, 10);
        h.set_witness(w, t(1));
        assert_eq!(check_witnessed(&h), Outcome::Linearizable);
    }
}
