//! The Wing–Gong exhaustive linearizability checker.

use std::collections::HashMap;
use std::collections::HashSet;

use hts_types::Value;

use crate::{History, Outcome};

/// Exhaustively checks a register history for linearizability.
///
/// This is the classic Wing–Gong search (as refined by Lowe): repeatedly
/// pick a *minimal* un-linearized operation (one not really-preceded by any
/// other un-linearized operation), apply it to the register, and backtrack
/// on failure; visited `(linearized-set, register-value)` states are
/// memoized. Pending reads are discarded (they constrain nothing); pending
/// writes may or may not be linearized.
///
/// Exact but worst-case exponential: intended for histories up to a few
/// hundred operations. For bigger histories see
/// [`check_conditions`](crate::check_conditions) and
/// [`check_witnessed`](crate::check_witnessed), or bound the effort with
/// [`check_exhaustive_bounded`].
pub fn check_exhaustive(history: &History) -> Outcome {
    check_exhaustive_bounded(history, usize::MAX)
}

/// Like [`check_exhaustive`] but gives up with [`Outcome::Unknown`] after
/// visiting `max_states` distinct search states.
pub fn check_exhaustive_bounded(history: &History, max_states: usize) -> Outcome {
    let mut h = history.clone();
    h.prune_pending_reads();

    // Intern values; index 0 is the initial content ⊥.
    let mut values: HashMap<Value, u32> = HashMap::new();
    values.insert(Value::bottom(), 0);
    let mut intern = |v: &Value| -> u32 {
        let next = values.len() as u32;
        *values.entry(v.clone()).or_insert(next)
    };

    struct SearchOp {
        inv: u64,
        ret: u64, // u64::MAX when pending
        is_read: bool,
        value: u32,
        complete: bool,
    }

    let ops: Vec<SearchOp> = h
        .records()
        .iter()
        .map(|r| SearchOp {
            inv: r.invoked_at,
            ret: r.effective_return(),
            is_read: r.op.is_read(),
            value: intern(r.op.value()),
            complete: r.is_complete(),
        })
        .collect();

    let n = ops.len();
    if n == 0 {
        return Outcome::Linearizable;
    }
    let complete_count = ops.iter().filter(|o| o.complete).count();

    let words = n.div_ceil(64);
    type Bits = Vec<u64>;
    let is_set = |bits: &Bits, i: usize| bits[i / 64] & (1u64 << (i % 64)) != 0;
    let set = |bits: &mut Bits, i: usize| bits[i / 64] |= 1u64 << (i % 64);
    let clear = |bits: &mut Bits, i: usize| bits[i / 64] &= !(1u64 << (i % 64));

    // Iterative depth-first search with an explicit stack of "next candidate
    // to try at this depth" so deep histories cannot overflow the call stack.
    // Each stack frame: (op chosen at this level, value before choosing it).
    let mut linearized: Bits = vec![0; words];
    let mut linearized_complete = 0usize;
    let mut value: u32 = 0;
    let mut seen: HashSet<(Bits, u32)> = HashSet::new();
    let mut stack: Vec<(usize, u32)> = Vec::new(); // (op index, previous value)
    let mut cursor = 0usize; // next candidate index to try at current depth

    loop {
        if linearized_complete == complete_count {
            return Outcome::Linearizable;
        }

        // The earliest return instant among un-linearized complete ops: an
        // op can only linearize next if it was invoked no later than this.
        let min_ret = ops
            .iter()
            .enumerate()
            .filter(|(i, o)| o.complete && !is_set(&linearized, *i))
            .map(|(_, o)| o.ret)
            .min()
            .unwrap_or(u64::MAX);

        // Try candidates from `cursor` upward.
        let mut advanced = false;
        let mut i = cursor;
        while i < n {
            if !is_set(&linearized, i) && ops[i].inv <= min_ret {
                let ok = if ops[i].is_read {
                    ops[i].value == value
                } else {
                    true
                };
                if ok {
                    // Tentatively linearize op i.
                    let prev_value = value;
                    set(&mut linearized, i);
                    if ops[i].complete {
                        linearized_complete += 1;
                    }
                    if !ops[i].is_read {
                        value = ops[i].value;
                    }
                    if seen.contains(&(linearized.clone(), value)) {
                        // Known dead state: undo and keep scanning.
                        clear(&mut linearized, i);
                        if ops[i].complete {
                            linearized_complete -= 1;
                        }
                        value = prev_value;
                    } else {
                        stack.push((i, prev_value));
                        cursor = 0;
                        advanced = true;
                        break;
                    }
                }
            }
            i += 1;
        }

        if advanced {
            continue;
        }

        // Dead end: memoize and backtrack.
        if seen.len() >= max_states {
            return Outcome::Unknown;
        }
        seen.insert((linearized.clone(), value));
        match stack.pop() {
            None => {
                return Outcome::NotLinearizable(format!(
                    "no valid linearization of {complete_count} completed ops \
                     (search visited {} states)",
                    seen.len()
                ));
            }
            Some((i, prev_value)) => {
                clear(&mut linearized, i);
                if ops[i].complete {
                    linearized_complete -= 1;
                }
                value = prev_value;
                cursor = i + 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_types::ClientId;

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert_eq!(check_exhaustive(&History::new()), Outcome::Linearizable);
    }

    #[test]
    fn sequential_write_then_read() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w, 1);
        let r = h.invoke_read(ClientId(0), 2);
        h.complete_read(r, v(1), 3);
        assert_eq!(check_exhaustive(&h), Outcome::Linearizable);
    }

    #[test]
    fn stale_read_after_write_completes_is_rejected() {
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w, 1);
        let r = h.invoke_read(ClientId(1), 2);
        h.complete_read(r, Value::bottom(), 3); // still sees ⊥: stale
        assert!(!check_exhaustive(&h).is_linearizable());
    }

    #[test]
    fn concurrent_read_may_see_either_value() {
        // write(1) spans [0,10]; a concurrent read [2,3] may see ⊥ or 1.
        for seen in [Value::bottom(), v(1)] {
            let mut h = History::new();
            let w = h.invoke_write(ClientId(0), v(1), 0);
            let r = h.invoke_read(ClientId(1), 2);
            h.complete_read(r, seen, 3);
            h.complete_write(w, 10);
            assert_eq!(check_exhaustive(&h), Outcome::Linearizable);
        }
    }

    #[test]
    fn read_inversion_is_rejected() {
        // The exact anomaly the paper's pre-write phase prevents:
        // write(1) spans [0,100]; r1=[10,20] returns 1; r2=[30,40] returns ⊥.
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), v(1), 0);
        let r1 = h.invoke_read(ClientId(1), 10);
        h.complete_read(r1, v(1), 20);
        let r2 = h.invoke_read(ClientId(2), 30);
        h.complete_read(r2, Value::bottom(), 40);
        h.complete_write(w, 100);
        assert!(!check_exhaustive(&h).is_linearizable());
    }

    #[test]
    fn pending_write_may_have_taken_effect() {
        // Pending write(1); read after it returns 1: linearizable.
        let mut h = History::new();
        h.invoke_write(ClientId(0), v(1), 0); // never completes
        let r = h.invoke_read(ClientId(1), 5);
        h.complete_read(r, v(1), 6);
        assert_eq!(check_exhaustive(&h), Outcome::Linearizable);
    }

    #[test]
    fn pending_write_may_also_never_take_effect() {
        let mut h = History::new();
        h.invoke_write(ClientId(0), v(1), 0); // never completes
        let r = h.invoke_read(ClientId(1), 5);
        h.complete_read(r, Value::bottom(), 6);
        assert_eq!(check_exhaustive(&h), Outcome::Linearizable);
    }

    #[test]
    fn value_must_have_been_written() {
        let mut h = History::new();
        let r = h.invoke_read(ClientId(0), 0);
        h.complete_read(r, v(42), 1);
        assert!(!check_exhaustive(&h).is_linearizable());
    }

    #[test]
    fn write_order_constrained_by_reads() {
        // w1(1)=[0,1], w2(2)=[2,3] — real time forces w1 < w2.
        // A later read returning 1 (the overwritten value) is a violation.
        let mut h = History::new();
        let w1 = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w1, 1);
        let w2 = h.invoke_write(ClientId(1), v(2), 2);
        h.complete_write(w2, 3);
        let r = h.invoke_read(ClientId(2), 4);
        h.complete_read(r, v(1), 5);
        assert!(!check_exhaustive(&h).is_linearizable());
    }

    #[test]
    fn fully_concurrent_writes_allow_either_read_order() {
        // Both writes span the whole run: a read pair may observe 1 then 2
        // OR 2 then 1 (each write can linearize between the reads).
        let build = |first: u64, second: u64| {
            let mut h = History::new();
            let w1 = h.invoke_write(ClientId(0), v(1), 0);
            let w2 = h.invoke_write(ClientId(1), v(2), 0);
            let r1 = h.invoke_read(ClientId(2), 10);
            h.complete_read(r1, v(first), 11);
            let r2 = h.invoke_read(ClientId(2), 12);
            h.complete_read(r2, v(second), 13);
            h.complete_write(w1, 20);
            h.complete_write(w2, 20);
            h
        };
        assert!(check_exhaustive(&build(1, 2)).is_linearizable());
        assert!(check_exhaustive(&build(2, 2)).is_linearizable());
        assert!(check_exhaustive(&build(2, 1)).is_linearizable());
    }

    #[test]
    fn sequential_writes_forbid_inverted_read_order() {
        // w1 strictly precedes w2; later reads must not see 2 then 1.
        let build = |first: u64, second: u64| {
            let mut h = History::new();
            let w1 = h.invoke_write(ClientId(0), v(1), 0);
            h.complete_write(w1, 1);
            let w2 = h.invoke_write(ClientId(1), v(2), 2);
            h.complete_write(w2, 3);
            let r1 = h.invoke_read(ClientId(2), 10);
            h.complete_read(r1, v(first), 11);
            let r2 = h.invoke_read(ClientId(2), 12);
            h.complete_read(r2, v(second), 13);
            h
        };
        assert!(check_exhaustive(&build(2, 2)).is_linearizable());
        assert!(!check_exhaustive(&build(1, 2)).is_linearizable()); // stale r1
        assert!(!check_exhaustive(&build(2, 1)).is_linearizable()); // inversion
    }

    #[test]
    fn bounded_search_reports_unknown() {
        // A non-linearizable history needs at least two dead-end states to
        // prove it; a budget of one forces Unknown.
        let mut h = History::new();
        let w = h.invoke_write(ClientId(0), v(1), 0);
        h.complete_write(w, 1);
        let r = h.invoke_read(ClientId(1), 2);
        h.complete_read(r, Value::bottom(), 3);
        assert_eq!(check_exhaustive_bounded(&h, 1), Outcome::Unknown);
        assert!(!check_exhaustive(&h).is_linearizable());
    }

    #[test]
    fn many_concurrent_writes_linearize_without_backtracking() {
        let mut h = History::new();
        for i in 0..20 {
            let w = h.invoke_write(ClientId(i), v(u64::from(i)), 0);
            h.complete_write(w, 100); // all concurrent
        }
        assert_eq!(check_exhaustive(&h), Outcome::Linearizable);
    }
}
