//! Linearizability checking for read/write register histories.
//!
//! The `hts` test-suite validates the storage algorithm by recording every
//! client operation (invocation and response instants plus payloads) into a
//! [`History`] and asking this crate whether the history is **linearizable**
//! (atomic, in the sense of Herlihy & Wing / Lamport): does a total order of
//! the operations exist that respects real-time precedence and register
//! semantics?
//!
//! Three checkers with different trade-offs:
//!
//! * [`check_exhaustive`] — the Wing–Gong search with memoization. Exact for
//!   any history (including pending operations), exponential in the worst
//!   case; use for histories up to a few hundred operations.
//! * [`check_conditions`] — a register-specialized condition checker
//!   requiring **unique written values**. Linear-ish time, *sound but
//!   incomplete*: every violation it reports is real (including the paper's
//!   "read inversion"), but it may miss exotic ones. Use as a fast triage on
//!   huge simulator histories.
//! * [`check_witnessed`] — exact and `O(n log n)` when the implementation
//!   discloses the [`Tag`] each operation resolved to (white-box). Verifies
//!   that the tag order is a valid linearization.
//!
//! # Examples
//!
//! ```
//! use hts_lincheck::{History, Outcome, check_exhaustive};
//! use hts_types::{ClientId, Value};
//!
//! let mut h = History::new();
//! // c0: |--- write(1) ---|        c1:      |-- read -> 1 --|
//! let w = h.invoke_write(ClientId(0), Value::from_u64(1), 0);
//! let r = h.invoke_read(ClientId(1), 5);
//! h.complete_write(w, 10);
//! h.complete_read(r, Value::from_u64(1), 12);
//! assert_eq!(check_exhaustive(&h), Outcome::Linearizable);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conditions;
mod history;
mod wg;
mod witness;

pub use conditions::Violation;
pub use history::{History, Op, OpId, OpRecord};

/// Exhaustive Wing–Gong search; additionally dumps the
/// process-wide per-op flight recorder to stderr on a non-linearizable
/// verdict, so the trace of recent protocol events survives next to the
/// witness (a no-op when the recorder is empty or metrics are off).
pub fn check_exhaustive(history: &History) -> Outcome {
    dump_flight_on_violation(wg::check_exhaustive(history))
}

/// Bounded Wing–Gong search; flight-dumps like
/// [`check_exhaustive`].
pub fn check_exhaustive_bounded(history: &History, max_states: usize) -> Outcome {
    dump_flight_on_violation(wg::check_exhaustive_bounded(history, max_states))
}

/// Witness-guided check; flight-dumps like
/// [`check_exhaustive`].
pub fn check_witnessed(history: &History) -> Outcome {
    dump_flight_on_violation(witness::check_witnessed(history))
}

/// Necessary-condition scan; flight-dumps when any
/// violation is found, like [`check_exhaustive`].
pub fn check_conditions(history: &History) -> Vec<Violation> {
    let violations = conditions::check_conditions(history);
    if !violations.is_empty() {
        hts_metrics::flight::dump_to_stderr("linearizability condition violated");
    }
    violations
}

fn dump_flight_on_violation(outcome: Outcome) -> Outcome {
    if let Outcome::NotLinearizable(_) = &outcome {
        hts_metrics::flight::dump_to_stderr("non-linearizable history");
    }
    outcome
}

/// The verdict of a linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A valid linearization exists.
    Linearizable,
    /// No valid linearization exists; the string describes the witness or
    /// violated condition.
    NotLinearizable(String),
    /// The (bounded) checker gave up before reaching a verdict.
    Unknown,
}

impl Outcome {
    /// Returns `true` for [`Outcome::Linearizable`].
    pub fn is_linearizable(&self) -> bool {
        matches!(self, Outcome::Linearizable)
    }
}
