//! Cross-validation of the three checkers on randomly generated histories.
//!
//! Strategy: generate histories that are linearizable **by construction**
//! (each operation is expanded from a point in a random sequential
//! execution into a random enclosing interval), then also corrupted
//! variants. Invariants:
//!
//! * constructed histories: all three checkers accept;
//! * any history: a `check_conditions` violation implies `check_exhaustive`
//!   rejects (soundness of the fast checker);
//! * corrupted witnesses are rejected by `check_witnessed`.

use hts_lincheck::{
    check_conditions, check_exhaustive, check_exhaustive_bounded, check_witnessed, History, Outcome,
};
use hts_types::{ClientId, ServerId, Tag, Value};
use proptest::prelude::*;

/// One op of the generated sequential execution.
#[derive(Debug, Clone)]
struct GenOp {
    is_read: bool,
    /// Slack subtracted from the linearization point to form the invocation.
    pre: u64,
    /// Slack added to form the response.
    post: u64,
}

fn arb_genops() -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(
        (any::<bool>(), 0u64..30, 0u64..30).prop_map(|(is_read, pre, post)| GenOp {
            is_read,
            pre,
            post,
        }),
        1..14,
    )
}

/// Expands sequential ops (linearization points 10, 20, 30, …) into a
/// concurrent history that is linearizable by construction, with correct
/// tag witnesses attached.
fn build_history(ops: &[GenOp]) -> History {
    let mut h = History::new();
    let mut value = Value::bottom();
    let mut tag = Tag::ZERO;
    let mut next_write = 1u64;
    for (i, op) in ops.iter().enumerate() {
        let lin = 10 * (i as u64 + 1);
        let inv = lin.saturating_sub(op.pre);
        let ret = lin + op.post;
        let client = ClientId(i as u32); // distinct clients: max concurrency
        if op.is_read {
            let id = h.invoke_read(client, inv);
            h.complete_read(id, value.clone(), ret);
            h.set_witness(id, tag);
        } else {
            let v = Value::from_u64(next_write);
            next_write += 1;
            tag = tag.successor(ServerId(0));
            value = v.clone();
            let id = h.invoke_write(client, v, inv);
            h.complete_write(id, ret);
            h.set_witness(id, tag);
        }
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn constructed_histories_accepted_by_all_checkers(ops in arb_genops()) {
        let h = build_history(&ops);
        prop_assert_eq!(check_exhaustive(&h), Outcome::Linearizable);
        prop_assert_eq!(check_witnessed(&h), Outcome::Linearizable);
        let cond = check_conditions(&h);
        prop_assert!(cond.is_empty(), "false positives: {cond:?}\n{h}");
    }

    #[test]
    fn conditions_checker_is_sound(ops in arb_genops(), corrupt in any::<prop::sample::Index>()) {
        // Corrupt one read (if any) to return a random other written value.
        let h = build_history(&ops);
        let reads: Vec<usize> = h
            .iter()
            .filter(|(_, r)| r.op.is_read())
            .map(|(id, _)| id.0)
            .collect();
        prop_assume!(!reads.is_empty());
        let victim = reads[corrupt.index(reads.len())];
        // Swap in a value one greater than what it returned (may or may not
        // exist; may or may not be linearizable afterwards).
        let old = h.records()[victim].op.value().as_u64().unwrap_or(0);
        let mut h2 = History::new();
        for (i, rec) in h.records().iter().enumerate() {
            let mut rec = rec.clone();
            if i == victim {
                rec.op = hts_lincheck::Op::Read(Value::from_u64(old + 1));
            }
            h2.push(rec);
        }
        let cond = check_conditions(&h2);
        if !cond.is_empty() {
            // Soundness: the exhaustive checker must agree it is broken.
            let exact = check_exhaustive_bounded(&h2, 2_000_000);
            prop_assert!(
                !exact.is_linearizable(),
                "conditions reported {cond:?} but WG accepts:\n{h2}"
            );
        }
    }

    #[test]
    fn exhaustive_acceptance_implies_no_conditions_violation(ops in arb_genops()) {
        let h = build_history(&ops);
        if check_exhaustive(&h).is_linearizable() {
            prop_assert!(check_conditions(&h).is_empty());
        }
    }

    #[test]
    fn corrupted_witness_rejected(ops in arb_genops(), bump in 1u64..5) {
        let h = build_history(&ops);
        // Bump the witness tag of the last write: order no longer matches.
        let writes: Vec<usize> = h
            .iter()
            .filter(|(_, r)| !r.op.is_read())
            .map(|(id, _)| id.0)
            .collect();
        prop_assume!(writes.len() >= 2);
        let mut h2 = History::new();
        for rec in h.records() {
            h2.push(rec.clone());
        }
        // Give the *first* write a tag higher than every other tag: unless
        // it is concurrent with everything after it, real time is violated.
        let first = writes[0];
        let max_ts = h.records().iter().filter_map(|r| r.witness).map(|t| t.ts).max().unwrap();
        h2.set_witness(hts_lincheck::OpId(first), Tag::new(max_ts + bump, ServerId(0)));
        // The first write's reads now witness a tag nobody wrote -> reject,
        // or the order violates real time -> reject. Only if the history
        // has no later non-overlapping op can it still pass; require one.
        let first_ret = h.records()[first].returned_at.unwrap();
        let has_later = h
            .records()
            .iter()
            .enumerate()
            .any(|(i, r)| i != first && r.invoked_at > first_ret);
        prop_assume!(has_later);
        prop_assert!(!check_witnessed(&h2).is_linearizable());
    }
}
