//! The threaded TCP server runtime.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use hts_core::{Action, BatchConfig, Config, Durability, MultiObjectServer};
use hts_types::{codec, codec::Hello, ClientId, Message, RingFrame, ServerId};
use hts_wal::{recover, FsyncPolicy, Recovery, Wal, WalOptions, WalRecord};

use crate::framing::{frame_into, read_message, write_ring_frames};

/// Coalesced client replies flush once this many buffered bytes
/// accumulate (bounds the scratch buffer under a burst of 64 KiB reads).
const REPLY_FLUSH_BYTES: usize = 256 * 1024;

/// Static deployment description handed to every [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// This server's id.
    pub id: ServerId,
    /// Listen addresses of **all** servers, indexed by [`ServerId`].
    pub addrs: Vec<SocketAddr>,
    /// Protocol options.
    pub config: Config,
    /// Write-ahead-log directory. With a persistent
    /// [`Config::durability`](hts_core::Config), committed writes are
    /// logged here before client acks go out, and a server whose
    /// directory already holds a log boots in **restart** mode: it
    /// restores its registers from snapshot + log tail, announces its
    /// rejoin around the ring, resyncs from its new predecessor and only
    /// then serves — converting the paper's crash-stop model into
    /// crash-recovery.
    pub wal_dir: Option<PathBuf>,
}

enum Event {
    /// A message arrived from a client connection.
    FromClient(ClientId, Message),
    /// A ring frame arrived from the predecessor side (batches are
    /// unpacked by the connection thread, in order).
    FromRing(RingFrame),
    /// A client connected; replies go into its sender.
    ClientUp(ClientId, Sender<Message>),
    /// A client connection died.
    ClientDown(ClientId),
    /// An inbound ring connection (from server `s`) died: `s` crashed.
    RingInDown(ServerId),
    /// The outbound writer for `s` failed (connecting, or mid-write) and
    /// exited; carries every frame it swallowed, oldest first. Not yet a
    /// crash verdict: a parked connection may simply predate the peer's
    /// restart (a non-adjacent server never observes the crash of a peer
    /// it was not connected to, so its parked entry can go stale
    /// silently). The event loop retries over a fresh connection and
    /// only declares the peer crashed if that also fails.
    RingWriteFailed(ServerId, Vec<RingFrame>),
    /// The writer for `s` put a batch of `n` frames on the wire: open
    /// that much pipeline room and clear any retry strike against `s` —
    /// the link is proven healthy. Writers also send `n = 0` right
    /// after a successful connect + handshake (strike clearing only).
    TxDone(ServerId, u32),
    /// Stop the event loop.
    Shutdown,
}

/// A running storage server (event loop + connection threads).
///
/// See the [crate docs](crate) for the runtime's shape; create whole local
/// clusters with [`Cluster`](crate::Cluster).
pub struct Server {
    events: Sender<Event>,
    handle: Option<JoinHandle<()>>,
    accept_alive: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `config.addrs[config.id]` and spawns the server. With a
    /// WAL directory and persistent durability, first recovers any
    /// existing log — a non-empty directory makes this a **restart**:
    /// the server rejoins the ring and resyncs before serving.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the listen address is unavailable, or
    /// the I/O error if log recovery / creation fails.
    pub fn spawn(config: ServerConfig) -> io::Result<Server> {
        let wal_state = match (&config.wal_dir, wal_fsync_policy(config.config.durability)) {
            (Some(dir), Some(fsync)) => {
                let recovery = recover(dir)?;
                let wal = Wal::open(
                    dir,
                    WalOptions {
                        fsync,
                        ..WalOptions::default()
                    },
                )?;
                Some((wal, recovery))
            }
            _ => None,
        };
        let addr = config.addrs[config.id.index()];
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (events_tx, events_rx) = unbounded::<Event>();
        let accept_alive = Arc::new(AtomicBool::new(true));

        // Accept loop.
        {
            let events = events_tx.clone();
            let alive = Arc::clone(&accept_alive);
            thread::spawn(move || accept_loop(listener, events, alive));
        }

        // Event loop.
        let handle = {
            let events = events_tx.clone();
            let rx = events_rx;
            thread::spawn(move || event_loop(config, rx, events, wal_state))
        };

        Ok(Server {
            events: events_tx,
            handle: Some(handle),
            accept_alive,
            addr,
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server (crashing it, from the cluster's point of view).
    pub fn shutdown(mut self) {
        self.accept_alive.store(false, Ordering::SeqCst);
        let _ = self.events.send(Event::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.accept_alive.store(false, Ordering::SeqCst);
        let _ = self.events.send(Event::Shutdown);
        // Threads exit on their own; not joined in drop (C-DTOR-BLOCK).
    }
}

fn accept_loop(listener: TcpListener, events: Sender<Event>, alive: Arc<AtomicBool>) {
    while alive.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let events = events.clone();
                thread::spawn(move || {
                    let _ = handle_connection(stream, events);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// Reads the handshake, then pumps messages into the event loop.
fn handle_connection(mut stream: TcpStream, events: Sender<Event>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut hello = [0u8; 5];
    stream.read_exact(&mut hello[..1])?;
    let peer = match hello[0] {
        0x01 => {
            stream.read_exact(&mut hello[1..3])?;
            Hello::decode(&hello[..3])
        }
        0x02 => {
            stream.read_exact(&mut hello[1..5])?;
            Hello::decode(&hello[..5])
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown hello role {other:#x}"),
            ))
        }
    }
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;

    match peer {
        Hello::Server(s) => {
            // Inbound ring connection: read frames (and unpack frame
            // batches, preserving their order) until it dies.
            let mut reader = stream;
            loop {
                match read_message(&mut reader) {
                    Ok(Message::Ring(frame)) => {
                        if events.send(Event::FromRing(frame)).is_err() {
                            return Ok(());
                        }
                    }
                    Ok(Message::RingBatch(frames)) => {
                        for frame in frames {
                            if events.send(Event::FromRing(frame)).is_err() {
                                return Ok(());
                            }
                        }
                    }
                    Ok(_) => {} // only ring traffic is expected here
                    Err(_) => {
                        let _ = events.send(Event::RingInDown(s));
                        return Ok(());
                    }
                }
            }
        }
        Hello::Client(c) => {
            let (reply_tx, reply_rx) = unbounded::<Message>();
            if events.send(Event::ClientUp(c, reply_tx)).is_err() {
                return Ok(());
            }
            // Writer half: coalesce every reply already queued into one
            // buffer fill and one flush (a burst of acks costs one
            // syscall, not one per message).
            let mut writer = stream.try_clone()?;
            thread::spawn(move || {
                let mut scratch = BytesMut::new();
                loop {
                    let Ok(first) = reply_rx.recv() else { return };
                    scratch.clear();
                    frame_into(&mut scratch, &first);
                    while scratch.len() < REPLY_FLUSH_BYTES {
                        match reply_rx.try_recv() {
                            Ok(msg) => frame_into(&mut scratch, &msg),
                            Err(_) => break,
                        }
                    }
                    if writer
                        .write_all(&scratch)
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
            });
            // Reader half.
            let mut reader = stream;
            loop {
                match read_message(&mut reader) {
                    Ok(msg) => {
                        if events.send(Event::FromClient(c, msg)).is_err() {
                            return Ok(());
                        }
                    }
                    Err(_) => {
                        let _ = events.send(Event::ClientDown(c));
                        return Ok(());
                    }
                }
            }
        }
    }
}

/// The outbound ring connection: a shared frame queue drained by a
/// dedicated writer thread that coalesces everything available into one
/// wire message per write (see [`ring_writer`]). The event loop paces how
/// many frames it pushes via `TxDone` events, exactly like the
/// simulator's TX-idle callback — just with a pipeline deeper than one.
/// Keyed by peer in the event loop; connections to peers that stop being
/// the successor are parked, not closed (see the event loop).
struct RingOut {
    queue: Arc<Mutex<VecDeque<RingFrame>>>,
    wake: Sender<()>,
}

impl RingOut {
    /// Queues frames for the writer and wakes it.
    fn push(&self, frames: Vec<RingFrame>) {
        {
            let mut q = self.queue.lock().expect("ring queue poisoned");
            q.extend(frames);
        }
        let _ = self.wake.send(());
    }

    /// Frames queued but not yet claimed by the writer.
    fn queued(&self) -> usize {
        self.queue.lock().expect("ring queue poisoned").len()
    }

    /// Takes every unclaimed frame (failure recovery: the writer is gone
    /// and the event loop owns re-routing them).
    fn take_queued(&self) -> Vec<RingFrame> {
        let mut q = self.queue.lock().expect("ring queue poisoned");
        q.drain(..).collect()
    }
}

/// Spawns the writer thread for the link to `to` and returns immediately:
/// connecting (with its retry sleeps) happens **on the writer thread**,
/// never on the event loop, so a slow-to-boot or dead peer cannot stall
/// client traffic. Frames pushed while the connection is still being
/// established simply wait in the queue. On any failure the thread exits
/// after reporting [`Event::RingWriteFailed`] with the frames it
/// swallowed; frames still in the shared queue stay recoverable there.
fn connect_ring_out(
    me: ServerId,
    to: ServerId,
    addr: SocketAddr,
    events: Sender<Event>,
    attempts: u32,
    batching: BatchConfig,
) -> RingOut {
    let queue = Arc::new(Mutex::new(VecDeque::new()));
    let (wake_tx, wake_rx) = unbounded::<()>();
    {
        let queue = Arc::clone(&queue);
        thread::spawn(move || {
            ring_writer(me, to, addr, events, attempts, batching, queue, wake_rx)
        });
    }
    RingOut {
        queue,
        wake: wake_tx,
    }
}

/// Extends `batch` from the shared queue, tracking the running encoded
/// size in `bytes` (callers carry it across the linger top-up so the
/// soft `max_bytes` budget is per **batch**, not per drain call). The
/// soft cap admits the frame that crosses it; the hard cap is the
/// receiver's [`MAX_FRAME_BYTES`](crate::framing::MAX_FRAME_BYTES) —
/// individually-shippable frames must never coalesce into a wire
/// message the other end will reject as oversized. The first frame is
/// admitted unconditionally: even a zero byte budget must not wedge the
/// link (and a single frame beyond the hard cap is unshippable batched
/// or not).
fn drain_batch(
    queue: &Mutex<VecDeque<RingFrame>>,
    max_frames: usize,
    max_bytes: usize,
    bytes: &mut usize,
    batch: &mut Vec<RingFrame>,
) {
    // Headroom for the batch discriminant + count and the length prefix.
    const HARD_CAP: usize = crate::framing::MAX_FRAME_BYTES - 16;
    let mut q = queue.lock().expect("ring queue poisoned");
    while batch.len() < max_frames.max(1) && (batch.is_empty() || *bytes < max_bytes) {
        let Some(frame) = q.front() else { break };
        let frame_bytes = codec::frame_wire_size(frame);
        if !batch.is_empty() && *bytes + frame_bytes > HARD_CAP {
            break;
        }
        let frame = q.pop_front().expect("peeked");
        *bytes += frame_bytes;
        batch.push(frame);
    }
}

/// The coalescing ring writer: connect (with retries), then repeatedly
/// drain everything queued into **one** buffered write and one flush per
/// batch. FIFO is trivially preserved — frames leave the queue and hit
/// the wire in push order.
#[allow(clippy::too_many_arguments)]
fn ring_writer(
    me: ServerId,
    to: ServerId,
    addr: SocketAddr,
    events: Sender<Event>,
    attempts: u32,
    batching: BatchConfig,
    queue: Arc<Mutex<VecDeque<RingFrame>>>,
    wake: Receiver<()>,
) {
    let fail = |swallowed: Vec<RingFrame>| {
        let _ = events.send(Event::RingWriteFailed(to, swallowed));
    };
    let mut stream = match connect_with_retry(addr, attempts) {
        Ok(s) => s,
        Err(_) => return fail(Vec::new()),
    };
    stream.set_nodelay(true).ok();
    if stream.write_all(&Hello::Server(me).encode()).is_err() {
        return fail(Vec::new());
    }
    // The link is proven healthy the moment the connect + handshake
    // lands: a zero-frame TxDone clears any retry strike against this
    // peer even if no traffic flows for a while (otherwise a strike
    // earned during a traffic-free episode would silently turn the NEXT
    // failure — possibly just a stale parked connection — into an
    // instant crash verdict, skipping the designed retry).
    if events.send(Event::TxDone(to, 0)).is_err() {
        return;
    }
    let max_frames = batching.max_frames.max(1);
    let linger = Duration::from_nanos(batching.linger.as_nanos());
    let mut scratch = BytesMut::new();
    loop {
        if wake.recv().is_err() {
            return; // server shut down
        }
        loop {
            let mut batch = Vec::new();
            let mut bytes = 0usize;
            drain_batch(
                &queue,
                max_frames,
                batching.max_bytes,
                &mut bytes,
                &mut batch,
            );
            if batch.is_empty() {
                break; // stale wake token; block again
            }
            if batch.len() < max_frames && !linger.is_zero() {
                // Give a near-simultaneous burst one chance to coalesce.
                // The byte budget carries over: the top-up cannot grow
                // the batch past what one drain could.
                thread::sleep(linger);
                drain_batch(
                    &queue,
                    max_frames,
                    batching.max_bytes,
                    &mut bytes,
                    &mut batch,
                );
            }
            if write_ring_frames(&mut stream, &batch, &mut scratch).is_err() {
                return fail(batch);
            }
            if events.send(Event::TxDone(to, batch.len() as u32)).is_err() {
                return;
            }
        }
    }
}

fn connect_with_retry(addr: SocketAddr, attempts: u32) -> io::Result<TcpStream> {
    let mut last = None;
    for attempt in 0..attempts {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                // No point sleeping after the last attempt. (These sleeps
                // run on the writer thread — the event loop keeps serving
                // client traffic throughout a reconnect storm.)
                if attempt + 1 < attempts {
                    thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("no attempts made")))
}

/// How a [`Durability`] setting maps onto the WAL's fsync policy
/// (`None` = no log at all).
fn wal_fsync_policy(durability: Durability) -> Option<FsyncPolicy> {
    match durability {
        Durability::Volatile => None,
        Durability::Buffered => Some(FsyncPolicy::OsDefault),
        Durability::SyncEveryN(n) => Some(FsyncPolicy::EveryN(n)),
        Durability::SyncAlways => Some(FsyncPolicy::Always),
    }
}

fn event_loop(
    config: ServerConfig,
    events: Receiver<Event>,
    events_tx: Sender<Event>,
    wal_state: Option<(Wal, Recovery)>,
) {
    let n = config.addrs.len() as u16;
    let batching = config.config.batching.normalized();
    // Frames the event loop may hand the active writer ahead of TxDone
    // acknowledgements: one batch on the wire, one batch queued behind
    // it. `max_frames = 1` degenerates to (pipelined) frame-at-a-time.
    let pipeline_cap = batching.max_frames.max(1) * 2;
    let mut core = MultiObjectServer::new(config.id, n, config.config.clone());
    let mut wal = None;
    if let Some((w, recovery)) = wal_state {
        // Restart path: restore the registers the log proves committed,
        // then announce the rejoin — reads queue until the announcement
        // makes it around the ring and back (the predecessor's recovery
        // stream is FIFO-ordered ahead of it).
        let restarting = recovery.had_log;
        core.restore_state(
            recovery
                .state
                .into_iter()
                .map(|(object, (tag, value))| (object, tag, value)),
        );
        if restarting {
            core.begin_rejoin();
        }
        wal = Some(w);
    }
    let mut clients: HashMap<ClientId, Sender<Message>> = HashMap::new();
    // Outbound ring connections by peer. The active one is the current
    // successor; older ones stay **parked**, not dropped — closing a
    // connection to a live peer would masquerade as our crash on its
    // side, and a later splice-back (rejoin) reuses the parked link.
    let mut ring_outs: HashMap<ServerId, RingOut> = HashMap::new();
    let mut active_out: Option<ServerId> = None;
    // Frames handed to the active writer and not yet TxDone-acknowledged.
    let mut in_channel = 0u32;
    // Peers whose writer failed once and is on its second-chance fresh
    // connection; a second failure is a crash verdict, a TxDone clears
    // the strike.
    let mut retried: HashSet<ServerId> = HashSet::new();

    let ensure_ring_out = |core: &MultiObjectServer,
                           ring_outs: &mut HashMap<ServerId, RingOut>,
                           active_out: &mut Option<ServerId>,
                           in_channel: &mut u32| {
        let successor = core.successor();
        if *active_out == successor {
            return;
        }
        *active_out = None;
        *in_channel = 0;
        let Some(next) = successor else { return };
        match ring_outs.entry(next) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                // Non-blocking: the writer thread does the connecting.
                slot.insert(connect_ring_out(
                    config.id,
                    next,
                    config.addrs[next.index()],
                    events_tx.clone(),
                    40,
                    batching,
                ));
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                // Reactivating a parked link: frames from its previous
                // activation may still be queued; count them or the
                // pipeline pacing would over-fill.
                *in_channel = slot.get().queued() as u32;
            }
        }
        *active_out = Some(next);
    };

    let flush = |clients: &HashMap<ClientId, Sender<Message>>, actions: Vec<Action>| {
        for action in actions {
            let (client, msg) = match action {
                Action::WriteAck {
                    object,
                    client,
                    request,
                } => (client, Message::WriteAck { object, request }),
                Action::ReadReply {
                    object,
                    client,
                    request,
                    value,
                    ..
                } => (
                    client,
                    Message::ReadAck {
                        object,
                        request,
                        value,
                    },
                ),
            };
            if let Some(tx) = clients.get(&client) {
                let _ = tx.send(msg);
            }
        }
    };

    // Appends the core's freshly committed writes to the log as ONE
    // group-committed batch: a single fsync covers every commit drained
    // by this event-loop iteration. Runs BEFORE actions flush, so under
    // `SyncAlways` a client never sees an ack whose write is not on
    // stable storage. Returns `false` on an unrecoverable log failure
    // (the server then stops = crash-stop).
    let persist = |core: &mut MultiObjectServer, wal: &mut Option<Wal>| -> bool {
        let Some(wal) = wal.as_mut() else {
            // Persistent durability without a wal_dir: nothing to log,
            // but the core still accumulates commits — drain them or
            // they pile up forever.
            core.drain_commits();
            return true;
        };
        let records: Vec<WalRecord> = core
            .drain_commits()
            .into_iter()
            .map(|(object, tag, value)| WalRecord { object, tag, value })
            .collect();
        if let Err(e) = wal.append_batch(&records) {
            eprintln!(
                "hts-net server {}: wal append failed ({e}); stopping to avoid \
                 acknowledging non-durable writes",
                config.id
            );
            return false;
        }
        if wal.wants_compaction() {
            let state: Vec<WalRecord> = core
                .export_state()
                .into_iter()
                .map(|(object, tag, value)| WalRecord { object, tag, value })
                .collect();
            if let Err(e) = wal.compact(&state) {
                // Non-fatal: the uncompacted log remains recoverable.
                eprintln!("hts-net server {}: wal compaction failed ({e})", config.id);
            }
        }
        true
    };

    let pump = |core: &mut MultiObjectServer,
                ring_outs: &mut HashMap<ServerId, RingOut>,
                active_out: &mut Option<ServerId>,
                in_channel: &mut u32| {
        ensure_ring_out(core, ring_outs, active_out, in_channel);
        let Some(active) = *active_out else { return };
        let Some(out) = ring_outs.get(&active) else {
            return;
        };
        // Keep the writer's pipeline primed: drain the batch scheduler
        // until the core has nothing ready or the pipeline is full.
        while (*in_channel as usize) < pipeline_cap {
            let room = pipeline_cap - *in_channel as usize;
            let frames = core.drain_frames(room.min(batching.max_frames), batching.max_bytes);
            if frames.is_empty() {
                break;
            }
            *in_channel += frames.len() as u32;
            out.push(frames);
        }
    };

    // Prime the ring before the first inbound event: a freshly booted
    // server eagerly connects to its successor, and a *restarted* one
    // must push its rejoin announcement without waiting to be spoken to.
    pump(&mut core, &mut ring_outs, &mut active_out, &mut in_channel);

    for event in &events {
        let actions = match event {
            Event::Shutdown => return,
            Event::ClientUp(c, tx) => {
                clients.insert(c, tx);
                Vec::new()
            }
            Event::ClientDown(c) => {
                clients.remove(&c);
                Vec::new()
            }
            Event::FromClient(c, msg) => match msg {
                Message::WriteReq {
                    object,
                    request,
                    value,
                } => core.on_client_write(object, c, request, value),
                Message::ReadReq { object, request } => core.on_client_read(object, c, request),
                _ => Vec::new(),
            },
            Event::FromRing(frame) => core.on_frame(frame),
            Event::RingInDown(s) => {
                // Any connection to the crashed server died with it; a
                // parked entry must not be reused after a rejoin.
                ring_outs.remove(&s);
                retried.remove(&s);
                core.on_server_crashed(s)
            }
            Event::RingWriteFailed(s, mut lost) => {
                // The writer is gone: recover the frames it never
                // claimed from the shared queue (they are strictly newer
                // than the batch it reported).
                if let Some(out) = ring_outs.remove(&s) {
                    lost.extend(out.take_queued());
                }
                if active_out == Some(s) {
                    in_channel = 0;
                }
                if retried.insert(s) {
                    // First strike: the connection may just be stale (the
                    // peer restarted while it sat parked). Retry the lost
                    // frames over a fresh connection — the connect runs
                    // on the new writer's thread, so even an unreachable
                    // peer costs the event loop nothing.
                    let out = connect_ring_out(
                        config.id,
                        s,
                        config.addrs[s.index()],
                        events_tx.clone(),
                        3,
                        batching,
                    );
                    if active_out == Some(s) {
                        in_channel = lost.len() as u32;
                    }
                    if !lost.is_empty() {
                        out.push(lost);
                    }
                    ring_outs.insert(s, out);
                    Vec::new()
                } else {
                    // Second strike on a fresh connection: the peer is
                    // really gone. The lost frames are covered by the
                    // splice-retransmission in `on_server_crashed`.
                    retried.remove(&s);
                    core.on_server_crashed(s)
                }
            }
            Event::TxDone(s, done) => {
                retried.remove(&s);
                if active_out == Some(s) {
                    in_channel = in_channel.saturating_sub(done);
                }
                Vec::new()
            }
        };
        if !persist(&mut core, &mut wal) {
            return;
        }
        flush(&clients, actions);
        pump(&mut core, &mut ring_outs, &mut active_out, &mut in_channel);
    }
}
