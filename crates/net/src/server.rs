//! The TCP server runtime: backend dispatch plus the threaded backend.
//!
//! A server hosts [`Config::lanes`](hts_core::Config) **parallel ring
//! lanes**: objects are partitioned across lanes by the shared
//! [`LaneMap`] placement, and each lane runs its own event loop thread,
//! its own outbound coalescing writer to the successor (a separate TCP
//! connection, tagged by a lane-aware handshake), its own inbound ring
//! stream and — with persistent durability — its own WAL directory. One
//! node therefore scales across cores instead of funneling every object
//! through a single event loop; `lanes = 1` (the default) is the
//! original single-ring runtime, byte for byte.
//!
//! Two wire-identical backends implement that shape:
//!
//! * the **reactor** backend ([`crate::reactor`], default on Linux):
//!   one epoll-driven thread per lane owns every socket — lanes + 1
//!   threads per node, no per-connection threads;
//! * the **threaded** backend (this file, `Config::reactor = false` or
//!   non-Linux): thread-per-connection with blocking I/O — the fig1
//!   ablation baseline and the portable fallback.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use hts_core::{
    Action, BatchConfig, Config, Durability, LaneMap, MultiObjectServer, ReadCellRegistry,
};
use hts_types::sync::{blocking_syscall, DebugCondvar, DebugMutex, DebugMutexGuard};
use hts_types::{codec, codec::Hello, ClientId, Message, ObjectId, RingFrame, ServerId, Value};
use hts_wal::{recover, FsyncPolicy, Recovery, Wal, WalOptions, WalRecord};

use crate::framing::{frame_into, read_message_copied, write_ring_frames, MessageReader};

/// Coalesced client replies flush once this many buffered bytes
/// accumulate (bounds the scratch buffer under a burst of 64 KiB reads).
const REPLY_FLUSH_BYTES: usize = 256 * 1024;

/// Static deployment description handed to every [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// This server's id.
    pub id: ServerId,
    /// Listen addresses of **all** servers, indexed by [`ServerId`].
    pub addrs: Vec<SocketAddr>,
    /// Protocol options. `config.lanes` ring lanes are spawned; every
    /// server of a cluster must agree on the lane count.
    pub config: Config,
    /// Write-ahead-log directory. With a persistent
    /// [`Config::durability`](hts_core::Config), committed writes are
    /// logged here before client acks go out, and a server whose
    /// directory already holds a log boots in **restart** mode: it
    /// restores its registers from snapshot + log tail, announces its
    /// rejoin around the ring, resyncs from its new predecessor and only
    /// then serves — converting the paper's crash-stop model into
    /// crash-recovery. A multi-lane server logs each lane into its own
    /// `lane-<k>` subdirectory (recovered independently on restart); a
    /// single-lane server uses the directory as-is, matching the
    /// pre-lane layout.
    pub wal_dir: Option<PathBuf>,
}

pub(crate) enum Event {
    /// A message arrived from a client connection.
    FromClient(ClientId, Message),
    /// A ring frame arrived from the predecessor side (batches are
    /// unpacked by the connection thread, in order).
    FromRing(RingFrame),
    /// A client connected; replies go into its sender.
    ClientUp(ClientId, Sender<Message>),
    /// A client connection died.
    ClientDown(ClientId),
    /// This lane's inbound ring connection (from server `s`) died: `s`
    /// crashed.
    RingInDown(ServerId),
    /// The outbound writer for `s` failed (connecting, or mid-write) and
    /// exited; carries every frame it swallowed, oldest first. Not yet a
    /// crash verdict: a parked connection may simply predate the peer's
    /// restart (a non-adjacent server never observes the crash of a peer
    /// it was not connected to, so its parked entry can go stale
    /// silently). The event loop retries over a fresh connection and
    /// only declares the peer crashed if that also fails.
    RingWriteFailed(ServerId, Vec<RingFrame>),
    /// The writer for `s` put a batch of `n` frames on the wire: open
    /// that much pipeline room and clear any retry strike against `s` —
    /// the link is proven healthy. Writers also send `n = 0` right
    /// after a successful connect + handshake (strike clearing only).
    TxDone(ServerId, u32),
    /// Stop the event loop.
    Shutdown,
}

/// Routes freshly accepted connections to the right lane's event loop:
/// inbound ring streams by their handshake's lane tag, client requests
/// by their object's lane.
struct LaneRouter {
    senders: Vec<Sender<Event>>,
    map: LaneMap,
    /// Per-lane published-snapshot cells: lets a client reader thread
    /// answer an unblocked read right where it was received, skipping
    /// the event-loop hop (see [`try_fast_read`]).
    cells: Vec<Arc<ReadCellRegistry>>,
    /// `Config::read_fast_path`: consult the snapshot cells at all.
    /// Off, every read takes the event-loop hop — the ablation
    /// baseline and the paper's always-wait behaviour.
    read_fast_path: bool,
    /// `Config::zero_copy`: decode inbound messages as views of one
    /// shared receive buffer (default), or through the copying baseline.
    zero_copy: bool,
}

/// Which runtime actually serves this node's sockets.
pub(crate) enum Backend {
    /// Thread-per-connection with blocking I/O (the original runtime).
    Threaded {
        lanes: Vec<Sender<Event>>,
        handles: Vec<JoinHandle<()>>,
        accept_alive: Arc<AtomicBool>,
    },
    /// One epoll reactor thread per lane (see [`crate::reactor`]).
    Reactor(crate::reactor::ReactorHandle),
}

/// A running storage server.
///
/// See the [crate docs](crate) for the runtime's shape; create whole local
/// clusters with [`Cluster`](crate::Cluster). Which backend serves the
/// sockets is picked at [`spawn`](Server::spawn) from
/// [`Config::reactor`](hts_core::Config) — both speak the identical wire
/// protocol.
pub struct Server {
    backend: Backend,
    addr: SocketAddr,
}

/// The WAL directory of one lane: the base directory itself for a
/// single-lane server (the pre-lane layout), `base/lane-<k>` otherwise.
pub(crate) fn lane_wal_dir(base: &Path, lane: u16, lanes: u16) -> PathBuf {
    if lanes <= 1 {
        base.to_path_buf()
    } else {
        base.join(format!("lane-{lane}"))
    }
}

/// Recovers (or creates) every lane's WAL ahead of serving: `None`
/// entries mean that lane keeps no log (volatile durability or no
/// `wal_dir`). Shared by both backends so a cluster can restart a node
/// under either and recover the same directories.
pub(crate) fn recover_lanes(config: &ServerConfig) -> io::Result<Vec<Option<(Wal, Recovery)>>> {
    let lanes = config.config.lanes.max(1);
    let fsync = wal_fsync_policy(config.config.durability);
    let mut wal_states = Vec::with_capacity(usize::from(lanes));
    for lane in 0..lanes {
        let state = match (&config.wal_dir, fsync) {
            (Some(dir), Some(fsync)) => {
                let dir = lane_wal_dir(dir, lane, lanes);
                let recovery = recover(&dir)?;
                let wal = Wal::open(
                    &dir,
                    WalOptions {
                        fsync,
                        ..WalOptions::default()
                    },
                )?;
                Some((wal, recovery))
            }
            _ => None,
        };
        wal_states.push(state);
    }
    Ok(wal_states)
}

/// Builds one lane's protocol core from its recovered WAL state:
/// restores the registers the log proves committed, flags a restart
/// rejoin when the directory already held a log, and attaches the
/// lane's fast-path cells only **after** the rejoin gate is armed (the
/// attach republishes every core with its resync bit already set, so a
/// restarted server's restored state is never readable early).
pub(crate) fn build_core(
    id: ServerId,
    n: u16,
    config: Config,
    wal_state: Option<(Wal, Recovery)>,
    cells: Arc<ReadCellRegistry>,
) -> (MultiObjectServer, Option<Wal>) {
    let mut core = MultiObjectServer::new(id, n, config);
    let mut wal = None;
    if let Some((w, recovery)) = wal_state {
        let restarting = recovery.had_log;
        core.restore_state(
            recovery
                .state
                .into_iter()
                .map(|(object, (tag, value))| (object, tag, value)),
        );
        if restarting {
            core.begin_rejoin();
        }
        wal = Some(w);
    }
    core.attach_read_cells(cells);
    (core, wal)
}

/// The client-visible reply for one committed protocol action.
pub(crate) fn action_into_message(action: Action) -> (ClientId, Message) {
    match action {
        Action::WriteAck {
            object,
            client,
            request,
        } => (client, Message::WriteAck { object, request }),
        Action::ReadReply {
            object,
            client,
            request,
            value,
            ..
        } => (
            client,
            Message::ReadAck {
                object,
                request,
                value,
            },
        ),
    }
}

/// RAII increment of the `hts_net_threads` gauge: every server-side
/// thread of either backend holds one for its lifetime, so the gauge
/// reads the node's live thread count at any instant — the fig1
/// reactor-ablation's threads-per-node column samples it.
pub(crate) struct ThreadTally;

impl ThreadTally {
    pub(crate) fn new() -> ThreadTally {
        hts_metrics::gauge!("hts_net_threads").add(1);
        ThreadTally
    }
}

impl Drop for ThreadTally {
    fn drop(&mut self) {
        hts_metrics::gauge!("hts_net_threads").sub(1);
    }
}

/// Whether readiness-driven I/O (`hts-poll`) may be used at all on this
/// host: the platform supports it and `HTS_REACTOR=0` is not set. Gates
/// both the server reactor and the session's shared poller thread.
pub(crate) fn readiness_enabled() -> bool {
    hts_poll::supported() && std::env::var_os("HTS_REACTOR").is_none_or(|v| v != "0")
}

impl Server {
    /// Binds `config.addrs[config.id]` and spawns the server. With a WAL
    /// directory and persistent durability, first recovers each lane's
    /// existing log — a non-empty directory makes this a **restart**:
    /// every lane rejoins its ring and resyncs before serving.
    ///
    /// [`Config::reactor`](hts_core::Config) picks the backend: the
    /// epoll reactor (lanes + 1 threads, Linux only) or the
    /// thread-per-connection baseline. Setting `HTS_REACTOR=0` in the
    /// environment forces the threaded backend regardless (the CI
    /// backend-matrix leg).
    ///
    /// # Errors
    ///
    /// Returns the bind error if the listen address is unavailable, or
    /// the I/O error if log recovery / creation fails.
    pub fn spawn(config: ServerConfig) -> io::Result<Server> {
        if config.config.reactor && readiness_enabled() {
            return crate::reactor::spawn(config);
        }
        Server::spawn_threaded(config)
    }

    /// Wraps a reactor backend (see [`crate::reactor::spawn`]).
    pub(crate) fn from_reactor(handle: crate::reactor::ReactorHandle, addr: SocketAddr) -> Server {
        Server {
            backend: Backend::Reactor(handle),
            addr,
        }
    }

    /// The threaded backend: one event loop per configured ring lane
    /// plus a blocking acceptor and a thread per connection.
    fn spawn_threaded(config: ServerConfig) -> io::Result<Server> {
        let lanes = config.config.lanes.max(1);
        let wal_states = recover_lanes(&config)?;
        let addr = config.addrs[config.id.index()];
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let accept_alive = Arc::new(AtomicBool::new(true));

        // One event loop per lane, each with its own channel, WAL and
        // read-fast-path cell registry (the loop is the cells' single
        // writer; client reader threads only consult them).
        let cells: Vec<Arc<ReadCellRegistry>> = (0..lanes)
            .map(|_| Arc::new(ReadCellRegistry::new()))
            .collect();
        let mut senders = Vec::with_capacity(usize::from(lanes));
        let mut handles = Vec::with_capacity(usize::from(lanes));
        for (lane, wal_state) in wal_states.into_iter().enumerate() {
            let (events_tx, events_rx) = unbounded::<Event>();
            senders.push(events_tx.clone());
            let lane_config = LaneConfig {
                lane: lane as u16,
                id: config.id,
                addrs: config.addrs.clone(),
                config: config.config.clone(),
            };
            let lane_cells = Arc::clone(&cells[lane]);
            handles.push(thread::spawn(move || {
                event_loop(lane_config, events_rx, events_tx, wal_state, lane_cells)
            }));
        }

        // Accept loop, demultiplexing onto the lanes.
        {
            let router = Arc::new(LaneRouter {
                senders: senders.clone(),
                map: LaneMap::new(lanes),
                cells,
                zero_copy: config.config.zero_copy,
                read_fast_path: config.config.read_fast_path,
            });
            let alive = Arc::clone(&accept_alive);
            thread::spawn(move || accept_loop(listener, router, alive));
        }

        Ok(Server {
            backend: Backend::Threaded {
                lanes: senders,
                handles,
                accept_alive,
            },
            addr,
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server (crashing it, from the cluster's point of view),
    /// joining its threads. The reactor backend additionally closes and
    /// deregisters every socket before its lane threads exit, so the
    /// listen port is immediately rebindable.
    pub fn shutdown(mut self) {
        self.stop(true);
    }

    /// Signals (and with `join`, waits out) every backend thread. The
    /// threaded acceptor blocks in `accept`, so after dropping the alive
    /// flag we poke the listen port with a throwaway connection to wake
    /// it; the reactor's acceptor is woken through its eventfd instead.
    fn stop(&mut self, join: bool) {
        let addr = self.addr;
        match &mut self.backend {
            Backend::Threaded {
                lanes,
                handles,
                accept_alive,
            } => {
                accept_alive.store(false, Ordering::SeqCst);
                for lane in lanes.iter() {
                    let _ = lane.send(Event::Shutdown);
                }
                let _ = TcpStream::connect(addr);
                if join {
                    for h in handles.drain(..) {
                        let _ = h.join();
                    }
                }
            }
            Backend::Reactor(handle) => handle.stop(join),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Threaded lanes exit on their own; not joined in drop
        // (C-DTOR-BLOCK). Reactor lanes *are* joined: each closes all
        // its sockets on the way out, making drop-then-rebind
        // deterministic, and wakes via eventfd so the join is prompt.
        let join = matches!(self.backend, Backend::Reactor(_));
        self.stop(join);
    }
}

fn accept_loop(listener: TcpListener, router: Arc<LaneRouter>, alive: Arc<AtomicBool>) {
    let _tally = ThreadTally::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if !alive.load(Ordering::SeqCst) {
                    // The wake-up poke from `Server::stop` (or any
                    // connection racing shutdown).
                    return;
                }
                let router = Arc::clone(&router);
                thread::spawn(move || {
                    let _tally = ThreadTally::new();
                    let _ = handle_connection(stream, router);
                });
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                ) =>
            {
                if !alive.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Reads the handshake, then pumps messages into the owning lane's event
/// loop: an inbound ring stream belongs to the lane its handshake names
/// (legacy `Hello::Server` = lane 0), client requests route per object.
fn handle_connection(mut stream: TcpStream, router: Arc<LaneRouter>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut hello = [0u8; 5];
    stream.read_exact(&mut hello[..1])?;
    let peer = match hello[0] {
        0x01 => {
            stream.read_exact(&mut hello[1..3])?;
            Hello::decode(&hello[..3])
        }
        0x02 | 0x03 => {
            stream.read_exact(&mut hello[1..5])?;
            Hello::decode(&hello[..5])
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown hello role {other:#x}"),
            ))
        }
    }
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;

    match peer {
        Hello::Server(s) => ring_in_loop(stream, s, &router.senders[0], router.zero_copy),
        Hello::ServerLane(s, lane) => {
            let Some(sender) = router.senders.get(usize::from(lane)) else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("ring lane {lane} outside this server's lane count"),
                ));
            };
            ring_in_loop(stream, s, sender, router.zero_copy)
        }
        Hello::Client(c) => {
            let (reply_tx, reply_rx) = unbounded::<Message>();
            for sender in &router.senders {
                if sender.send(Event::ClientUp(c, reply_tx.clone())).is_err() {
                    return Ok(());
                }
            }
            // The reader below keeps one sender for fast-path read
            // replies; the lanes own the rest. The writer exits once
            // they all drop (reader exit + ClientDown processing).
            let fast_reply = reply_tx.clone();
            drop(reply_tx);
            // Writer half: coalesce every reply already queued into one
            // buffer fill and one flush (a burst of acks costs one
            // syscall, not one per message).
            let mut writer = stream.try_clone()?;
            thread::spawn(move || {
                let _tally = ThreadTally::new();
                let mut scratch = BytesMut::new();
                loop {
                    let Ok(first) = reply_rx.recv() else { return };
                    scratch.clear();
                    frame_into(&mut scratch, &first);
                    while scratch.len() < REPLY_FLUSH_BYTES {
                        match reply_rx.try_recv() {
                            Ok(msg) => frame_into(&mut scratch, &msg),
                            Err(_) => break,
                        }
                    }
                    blocking_syscall("client reply send");
                    if writer
                        .write_all(&scratch)
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
            });
            // Reader half: route each request to its object's lane —
            // except reads the published snapshot can answer right here
            // (see `try_fast_read`), which never enter the event loop.
            let mut reader = stream;
            let mut scratch = MessageReader::new();
            loop {
                let next = if router.zero_copy {
                    scratch.read(&mut reader)
                } else {
                    read_message_copied(&mut reader)
                };
                match next {
                    Ok(Message::ReadReq { object, request })
                        if router.read_fast_path
                            && try_fast_read(&router, &fast_reply, object, request) => {}
                    Ok(msg) => {
                        let lane = usize::from(router.map.lane_of(msg.object()));
                        if router.senders[lane]
                            .send(Event::FromClient(c, msg))
                            .is_err()
                        {
                            return Ok(());
                        }
                    }
                    Err(_) => {
                        for sender in &router.senders {
                            let _ = sender.send(Event::ClientDown(c));
                        }
                        return Ok(());
                    }
                }
            }
        }
    }
}

/// The lock-free read fast path: answers a client read **on the reader
/// thread** from the object's published snapshot cell when it is
/// unblocked — the common case of a read-mostly register — skipping the
/// event-loop hop entirely. Only consulted when `Config::read_fast_path`
/// is on; off, every read routes to the event loop (the paper's
/// always-wait behaviour and the fig1 ablation baseline). Returns
/// `false` (caller routes to the event loop, which is always correct)
/// when the cell is blocked by a pending pre-write or resync,
/// contended, or not yet published.
///
/// Semantics match the event-loop path exactly: the cell's blocked bit
/// is maintained by [`ServerCore`](hts_core::ServerCore) under the same
/// predicate `on_client_read` uses, and a core republishes *before* its
/// acks flush, so any value a client could have already observed is in
/// the cell by the time the client's next read arrives.
fn try_fast_read(
    router: &LaneRouter,
    reply: &Sender<Message>,
    object: ObjectId,
    request: hts_types::RequestId,
) -> bool {
    let lane = usize::from(router.map.lane_of(object));
    let Some((_, value)) = router.cells[lane].try_read(object) else {
        hts_metrics::counter!("hts_net_read_fastpath_fallbacks_total").inc();
        return false;
    };
    hts_metrics::counter!("hts_net_read_fastpath_hits_total").inc();
    reply
        .send(Message::ReadAck {
            object,
            request,
            value,
        })
        .is_ok()
}

/// Pumps one inbound ring connection (one lane's FIFO stream from server
/// `s`) into its lane's event loop until it dies, unpacking frame
/// batches in order. With `zero_copy` (the default), every batch lands
/// in one shared receive buffer and its values are refcounted views of
/// it — a 64 KiB pre-write costs zero value copies between the socket
/// and the store.
fn ring_in_loop(
    mut reader: TcpStream,
    s: ServerId,
    events: &Sender<Event>,
    zero_copy: bool,
) -> io::Result<()> {
    let mut scratch = MessageReader::new();
    loop {
        let next = if zero_copy {
            scratch.read(&mut reader)
        } else {
            read_message_copied(&mut reader)
        };
        match next {
            Ok(Message::Ring(frame)) => {
                if events.send(Event::FromRing(frame)).is_err() {
                    return Ok(());
                }
            }
            Ok(Message::RingBatch(frames)) => {
                for frame in frames {
                    if events.send(Event::FromRing(frame)).is_err() {
                        return Ok(());
                    }
                }
            }
            // Requests, replies and stats never arrive on a ring stream;
            // drop them by name so a new wire variant forces a decision
            // here.
            Ok(Message::WriteReq { .. })
            | Ok(Message::ReadReq { .. })
            | Ok(Message::WriteAck { .. })
            | Ok(Message::ReadAck { .. })
            | Ok(Message::StatsRequest { .. })
            | Ok(Message::StatsReply { .. }) => {}
            Err(_) => {
                let _ = events.send(Event::RingInDown(s));
                return Ok(());
            }
        }
    }
}

/// The outbound ring writer's shared state: the frame queue plus a
/// shutdown flag under one mutex, and the condvar the writer blocks on.
/// Pushes and shutdown both signal it, so a linger never outlives the
/// work it was waiting for (see [`ring_writer`]).
struct RingShared {
    queue: DebugMutex<RingQueue>,
    ready: DebugCondvar,
}

struct RingQueue {
    frames: VecDeque<RingFrame>,
    shutdown: bool,
}

impl RingShared {
    fn lock(&self) -> DebugMutexGuard<'_, RingQueue> {
        self.queue.lock()
    }
}

/// The outbound ring connection: a shared frame queue drained by a
/// dedicated writer thread that coalesces everything available into one
/// wire message per write (see [`ring_writer`]). The event loop paces how
/// many frames it pushes via `TxDone` events, exactly like the
/// simulator's TX-idle callback — just with a pipeline deeper than one.
/// Keyed by peer in the event loop; connections to peers that stop being
/// the successor are parked, not closed (see the event loop). Dropping
/// the handle flags shutdown: the writer flushes what is queued and
/// exits without waiting out any linger.
struct RingOut {
    shared: Arc<RingShared>,
}

impl RingOut {
    /// Queues frames for the writer and wakes it.
    fn push(&self, frames: Vec<RingFrame>) {
        self.shared.lock().frames.extend(frames);
        self.shared.ready.notify_all();
    }

    /// Frames queued but not yet claimed by the writer.
    fn queued(&self) -> usize {
        self.shared.lock().frames.len()
    }

    /// Takes every unclaimed frame (failure recovery: the writer is gone
    /// and the event loop owns re-routing them).
    fn take_queued(&self) -> Vec<RingFrame> {
        self.shared.lock().frames.drain(..).collect()
    }
}

impl Drop for RingOut {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.ready.notify_all();
    }
}

/// Spawns the writer thread for lane `lane`'s link to `to` and returns
/// immediately: connecting (with its retry sleeps) happens **on the
/// writer thread**, never on the event loop, so a slow-to-boot or dead
/// peer cannot stall client traffic. Frames pushed while the connection
/// is still being established simply wait in the queue. On any failure
/// the thread exits after reporting [`Event::RingWriteFailed`] with the
/// frames it swallowed; frames still in the shared queue stay
/// recoverable there.
fn connect_ring_out(
    me: ServerId,
    to: ServerId,
    lane: u16,
    addr: SocketAddr,
    events: Sender<Event>,
    attempts: u32,
    batching: BatchConfig,
) -> RingOut {
    let shared = Arc::new(RingShared {
        queue: DebugMutex::new(
            "net.ring_writer.queue",
            RingQueue {
                frames: VecDeque::new(),
                shutdown: false,
            },
        ),
        ready: DebugCondvar::new(),
    });
    {
        let shared = Arc::clone(&shared);
        thread::spawn(move || ring_writer(me, to, lane, addr, events, attempts, batching, shared));
    }
    RingOut { shared }
}

/// Extends `batch` from the queue, tracking the running encoded size in
/// `bytes` (callers carry it across the linger top-up so the soft
/// `max_bytes` budget is per **batch**, not per drain call). The soft
/// cap admits the frame that crosses it; the hard cap is the receiver's
/// [`MAX_FRAME_BYTES`](crate::framing::MAX_FRAME_BYTES) —
/// individually-shippable frames must never coalesce into a wire
/// message the other end will reject as oversized. The first frame is
/// admitted unconditionally: even a zero byte budget must not wedge the
/// link (and a single frame beyond the hard cap is unshippable batched
/// or not).
pub(crate) fn drain_batch(
    q: &mut VecDeque<RingFrame>,
    max_frames: usize,
    max_bytes: usize,
    bytes: &mut usize,
    batch: &mut Vec<RingFrame>,
) {
    // Headroom for the batch discriminant + count and the length prefix.
    const HARD_CAP: usize = crate::framing::MAX_FRAME_BYTES - 16;
    while batch.len() < max_frames.max(1) && (batch.is_empty() || *bytes < max_bytes) {
        let Some(frame) = q.front() else { break };
        let frame_bytes = codec::frame_wire_size(frame);
        if !batch.is_empty() && *bytes + frame_bytes > HARD_CAP {
            break;
        }
        let Some(frame) = q.pop_front() else { break };
        *bytes += frame_bytes;
        batch.push(frame);
    }
}

/// The writer's blocking drain/linger/shutdown handshake, socket-free so
/// the `hts-mc` model below can exhaustively explore it: blocks on the
/// queue condvar until there is work, drains a batch, optionally lingers
/// for a near-simultaneous burst to coalesce (the condvar — never a hard
/// sleep — so a push that fills the batch or a shutdown wakes it
/// immediately), and returns the batch with its encoded size. `None`
/// means shutdown with an empty queue: the writer exits. Queued frames
/// still flush on the way out — shutdown with work pending returns the
/// batch, promptly (the linger loop exits on the shutdown flag).
fn next_batch(
    shared: &RingShared,
    max_frames: usize,
    max_bytes: usize,
    linger: Duration,
) -> Option<(Vec<RingFrame>, usize)> {
    let mut batch = Vec::new();
    let mut bytes = 0usize;
    let mut q = shared.lock();
    loop {
        if !q.frames.is_empty() {
            break;
        }
        if q.shutdown {
            return None;
        }
        q = shared.ready.wait(q);
    }
    drain_batch(&mut q.frames, max_frames, max_bytes, &mut bytes, &mut batch);
    if batch.len() < max_frames && bytes < max_bytes && !linger.is_zero() {
        // Give a near-simultaneous burst one chance to coalesce. The
        // byte budget carries over: the top-up cannot grow the batch
        // past what one drain could.
        let deadline = Instant::now() + linger;
        while !q.shutdown {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            let (guard, _) = shared.ready.wait_timeout(q, remaining);
            q = guard;
            drain_batch(&mut q.frames, max_frames, max_bytes, &mut bytes, &mut batch);
            if batch.len() >= max_frames || bytes >= max_bytes {
                break;
            }
        }
    }
    Some((batch, bytes))
}

/// The coalescing ring writer: connect (with retries), then repeatedly
/// drain everything queued ([`next_batch`]) into **one** buffered write
/// and one flush per batch. FIFO is trivially preserved — frames leave
/// the queue and hit the wire in push order. A full batch always flushes
/// at once and shutdown is prompt even with a long linger configured.
#[allow(clippy::too_many_arguments)]
fn ring_writer(
    me: ServerId,
    to: ServerId,
    lane: u16,
    addr: SocketAddr,
    events: Sender<Event>,
    attempts: u32,
    batching: BatchConfig,
    shared: Arc<RingShared>,
) {
    let _tally = ThreadTally::new();
    let fail = |swallowed: Vec<RingFrame>| {
        let _ = events.send(Event::RingWriteFailed(to, swallowed));
    };
    let mut stream = match connect_with_retry(addr, attempts, &shared) {
        Ok(s) => s,
        Err(_) => return fail(Vec::new()),
    };
    stream.set_nodelay(true).ok();
    // Lane 0 keeps the legacy handshake (a single-lane cluster speaks
    // the pre-lane wire protocol bit for bit); other lanes tag theirs.
    let hello = if lane == 0 {
        Hello::Server(me)
    } else {
        Hello::ServerLane(me, lane)
    };
    blocking_syscall("ring handshake send");
    if stream.write_all(&hello.encode()).is_err() {
        return fail(Vec::new());
    }
    // The link is proven healthy the moment the connect + handshake
    // lands: a zero-frame TxDone clears any retry strike against this
    // peer even if no traffic flows for a while (otherwise a strike
    // earned during a traffic-free episode would silently turn the NEXT
    // failure — possibly just a stale parked connection — into an
    // instant crash verdict, skipping the designed retry).
    if events.send(Event::TxDone(to, 0)).is_err() {
        return;
    }
    let max_frames = batching.max_frames.max(1);
    let linger = Duration::from_nanos(batching.linger.as_nanos());
    let mut scratch = BytesMut::new();
    loop {
        // `next_batch` returns with the queue lock released: never touch
        // the socket with it held.
        let Some((batch, bytes)) = next_batch(&shared, max_frames, batching.max_bytes, linger)
        else {
            return;
        };
        hts_metrics::histogram!("hts_net_ring_batch_frames").record(batch.len() as u64);
        hts_metrics::histogram!("hts_net_ring_batch_bytes").record(bytes as u64);
        blocking_syscall("ring successor send");
        let t0 = hts_metrics::now_nanos();
        if write_ring_frames(&mut stream, &batch, &mut scratch).is_err() {
            return fail(batch);
        }
        hts_metrics::histogram!("hts_net_ring_write_nanos").record(hts_metrics::now_nanos() - t0);
        if events.send(Event::TxDone(to, batch.len() as u32)).is_err() {
            return;
        }
    }
}

fn connect_with_retry(
    addr: SocketAddr,
    attempts: u32,
    shared: &RingShared,
) -> io::Result<TcpStream> {
    let mut last = None;
    for attempt in 0..attempts {
        blocking_syscall("ring successor connect");
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                // No point waiting after the last attempt. The backoff
                // runs on the writer thread (the event loop keeps serving
                // client traffic throughout a reconnect storm) and waits
                // on the queue condvar, NOT a hard sleep: dropping the
                // RingOut flags shutdown and signals it, so a writer
                // stuck retrying a dead peer aborts immediately instead
                // of sleeping out the rest of its backoff.
                if attempt + 1 < attempts {
                    let (q, _) = shared
                        .ready
                        .wait_timeout(shared.lock(), Duration::from_millis(50));
                    if q.shutdown {
                        return Err(io::Error::new(
                            io::ErrorKind::Interrupted,
                            "ring writer shut down during connect retry",
                        ));
                    }
                }
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("no attempts made")))
}

/// Records a crash verdict against `peer` (counter + flight event), and
/// — when `HTS_FLIGHT_DUMP` is set in the environment — dumps the flight
/// recorder to stderr so the events leading up to the verdict survive
/// for post-mortem. Env-gated because verdicts are *routine* in the
/// kill/restart tests; an unconditional dump would bury their output.
pub(crate) fn note_crash_verdict(me: ServerId, lane: u16, peer: ServerId) {
    hts_metrics::counter!("hts_net_crash_verdicts_total").inc();
    hts_metrics::flight::record(
        hts_metrics::flight::KIND_CRASH_VERDICT,
        u64::from(peer.0),
        u64::from(me.0),
        u64::from(lane),
    );
    if std::env::var_os("HTS_FLIGHT_DUMP").is_some() {
        hts_metrics::flight::dump_to_stderr("crash verdict");
    }
}

/// How a [`Durability`] setting maps onto the WAL's fsync policy
/// (`None` = no log at all).
pub(crate) fn wal_fsync_policy(durability: Durability) -> Option<FsyncPolicy> {
    match durability {
        Durability::Volatile => None,
        Durability::Buffered => Some(FsyncPolicy::OsDefault),
        Durability::SyncEveryN(n) => Some(FsyncPolicy::EveryN(n)),
        Durability::SyncAlways => Some(FsyncPolicy::Always),
    }
}

/// Appends the core's freshly committed writes to the log as ONE
/// group-committed batch: a single fsync covers every commit drained by
/// this loop iteration. Runs BEFORE actions flush, so under `SyncAlways`
/// a client never sees an ack whose write is not on stable storage.
/// Returns `false` on an unrecoverable log failure (the server then
/// stops = crash-stop). Shared by both backends — the durability
/// ordering is a wire-visible guarantee, not a backend detail.
pub(crate) fn persist_commits(
    core: &mut MultiObjectServer,
    wal: &mut Option<Wal>,
    id: ServerId,
    lane: u16,
) -> bool {
    let Some(wal) = wal.as_mut() else {
        // Persistent durability without a wal_dir: nothing to log, but
        // the core still accumulates commits — drain them or they pile
        // up forever.
        core.drain_commits();
        return true;
    };
    let records: Vec<WalRecord> = core
        .drain_commits()
        .into_iter()
        .map(|(object, tag, value)| WalRecord { object, tag, value })
        .collect();
    if let Err(e) = wal.append_batch(&records) {
        eprintln!(
            "hts-net server {id} lane {lane}: wal append failed ({e}); stopping to avoid \
             acknowledging non-durable writes"
        );
        return false;
    }
    if wal.wants_compaction() {
        let state: Vec<WalRecord> = core
            .export_state()
            .into_iter()
            .map(|(object, tag, value)| WalRecord { object, tag, value })
            .collect();
        if let Err(e) = wal.compact(&state) {
            // Non-fatal: the uncompacted log remains recoverable.
            eprintln!("hts-net server {id} lane {lane}: wal compaction failed ({e})");
        }
    }
    true
}

/// Everything one lane's event loop needs to know about its place in the
/// deployment.
pub(crate) struct LaneConfig {
    pub(crate) lane: u16,
    pub(crate) id: ServerId,
    pub(crate) addrs: Vec<SocketAddr>,
    pub(crate) config: Config,
}

fn event_loop(
    lc: LaneConfig,
    events: Receiver<Event>,
    events_tx: Sender<Event>,
    wal_state: Option<(Wal, Recovery)>,
    cells: Arc<ReadCellRegistry>,
) {
    let _tally = ThreadTally::new();
    let n = lc.addrs.len() as u16;
    let batching = lc.config.batching.normalized();
    // Frames the event loop may hand the active writer ahead of TxDone
    // acknowledgements: one batch on the wire, one batch queued behind
    // it. `max_frames = 1` degenerates to (pipelined) frame-at-a-time.
    let pipeline_cap = batching.max_frames.max(1) * 2;
    let (mut core, mut wal) = build_core(lc.id, n, lc.config.clone(), wal_state, cells);
    let mut clients: HashMap<ClientId, Sender<Message>> = HashMap::new();
    // Outbound ring connections by peer. The active one is the current
    // successor; older ones stay **parked**, not dropped — closing a
    // connection to a live peer would masquerade as our crash on its
    // side, and a later splice-back (rejoin) reuses the parked link.
    let mut ring_outs: HashMap<ServerId, RingOut> = HashMap::new();
    let mut active_out: Option<ServerId> = None;
    // Frames handed to the active writer and not yet TxDone-acknowledged.
    let mut in_channel = 0u32;
    // Peers whose writer failed once and is on its second-chance fresh
    // connection; a second failure is a crash verdict, a TxDone clears
    // the strike.
    let mut retried: HashSet<ServerId> = HashSet::new();

    let ensure_ring_out = |core: &MultiObjectServer,
                           ring_outs: &mut HashMap<ServerId, RingOut>,
                           active_out: &mut Option<ServerId>,
                           in_channel: &mut u32| {
        let successor = core.successor();
        if *active_out == successor {
            return;
        }
        *active_out = None;
        *in_channel = 0;
        let Some(next) = successor else { return };
        match ring_outs.entry(next) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                // Non-blocking: the writer thread does the connecting.
                slot.insert(connect_ring_out(
                    lc.id,
                    next,
                    lc.lane,
                    lc.addrs[next.index()],
                    events_tx.clone(),
                    40,
                    batching,
                ));
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                // Reactivating a parked link: frames from its previous
                // activation may still be queued; count them or the
                // pipeline pacing would over-fill.
                *in_channel = slot.get().queued() as u32;
            }
        }
        *active_out = Some(next);
    };

    let flush = |clients: &HashMap<ClientId, Sender<Message>>, actions: Vec<Action>| {
        for action in actions {
            let (client, msg) = action_into_message(action);
            if let Some(tx) = clients.get(&client) {
                let _ = tx.send(msg);
            }
        }
    };

    let pump = |core: &mut MultiObjectServer,
                ring_outs: &mut HashMap<ServerId, RingOut>,
                active_out: &mut Option<ServerId>,
                in_channel: &mut u32| {
        ensure_ring_out(core, ring_outs, active_out, in_channel);
        let Some(active) = *active_out else { return };
        let Some(out) = ring_outs.get(&active) else {
            return;
        };
        // Keep the writer's pipeline primed: drain the batch scheduler
        // until the core has nothing ready or the pipeline is full.
        while (*in_channel as usize) < pipeline_cap {
            let room = pipeline_cap - *in_channel as usize;
            let frames = core.drain_frames(room.min(batching.max_frames), batching.max_bytes);
            if frames.is_empty() {
                break;
            }
            *in_channel += frames.len() as u32;
            out.push(frames);
        }
    };

    // Prime the ring before the first inbound event: a freshly booted
    // server eagerly connects to its successor, and a *restarted* one
    // must push its rejoin announcement without waiting to be spoken to.
    pump(&mut core, &mut ring_outs, &mut active_out, &mut in_channel);

    for event in &events {
        let actions = match event {
            Event::Shutdown => return,
            Event::ClientUp(c, tx) => {
                clients.insert(c, tx);
                Vec::new()
            }
            Event::ClientDown(c) => {
                clients.remove(&c);
                Vec::new()
            }
            Event::FromClient(c, msg) => match msg {
                Message::WriteReq {
                    object,
                    request,
                    value,
                } => core.on_client_write(object, c, request, value),
                Message::ReadReq { object, request } => core.on_client_read(object, c, request),
                Message::StatsRequest { request } => {
                    // Answered from the process-wide registry without
                    // touching the protocol core: stats are observational
                    // and never consume an op slot.
                    if let Some(tx) = clients.get(&c) {
                        let _ = tx.send(Message::StatsReply {
                            request,
                            text: Value::from(hts_metrics::render().into_bytes()),
                        });
                    }
                    Vec::new()
                }
                // Clients never send replies or ring traffic; drop them
                // by name so a new wire variant forces a decision here.
                Message::WriteAck { .. }
                | Message::ReadAck { .. }
                | Message::StatsReply { .. }
                | Message::Ring(_)
                | Message::RingBatch(_) => Vec::new(),
            },
            Event::FromRing(frame) => core.on_frame(frame),
            Event::RingInDown(s) => {
                // Any connection to the crashed server died with it; a
                // parked entry must not be reused after a rejoin.
                ring_outs.remove(&s);
                retried.remove(&s);
                note_crash_verdict(lc.id, lc.lane, s);
                core.on_server_crashed(s)
            }
            Event::RingWriteFailed(s, mut lost) => {
                // The writer is gone: recover the frames it never
                // claimed from the shared queue (they are strictly newer
                // than the batch it reported).
                if let Some(out) = ring_outs.remove(&s) {
                    lost.extend(out.take_queued());
                }
                if active_out == Some(s) {
                    in_channel = 0;
                }
                if retried.insert(s) {
                    // First strike: the connection may just be stale (the
                    // peer restarted while it sat parked). Retry the lost
                    // frames over a fresh connection — the connect runs
                    // on the new writer's thread, so even an unreachable
                    // peer costs the event loop nothing.
                    let out = connect_ring_out(
                        lc.id,
                        s,
                        lc.lane,
                        lc.addrs[s.index()],
                        events_tx.clone(),
                        3,
                        batching,
                    );
                    if active_out == Some(s) {
                        in_channel = lost.len() as u32;
                    }
                    if !lost.is_empty() {
                        out.push(lost);
                    }
                    ring_outs.insert(s, out);
                    Vec::new()
                } else {
                    // Second strike on a fresh connection: the peer is
                    // really gone. The lost frames are covered by the
                    // splice-retransmission in `on_server_crashed`.
                    retried.remove(&s);
                    note_crash_verdict(lc.id, lc.lane, s);
                    core.on_server_crashed(s)
                }
            }
            Event::TxDone(s, done) => {
                retried.remove(&s);
                if active_out == Some(s) {
                    in_channel = in_channel.saturating_sub(done);
                }
                Vec::new()
            }
        };
        if !persist_commits(&mut core, &mut wal, lc.id, lc.lane) {
            return;
        }
        flush(&clients, actions);
        pump(&mut core, &mut ring_outs, &mut active_out, &mut in_channel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::read_message;
    use hts_sim::Nanos;
    use hts_types::{ObjectId, Tag, Value};

    fn test_frame(ts: u64) -> RingFrame {
        RingFrame::pre_write(ObjectId(1), Tag::new(ts, ServerId(0)), Value::from_u64(ts))
    }

    /// Accepts one ring connection on `listener` and forwards every
    /// decoded wire message (with its arrival instant) into a channel.
    fn accept_ring(listener: TcpListener) -> Receiver<(Instant, Message)> {
        let (tx, rx) = unbounded();
        thread::spawn(move || {
            listener.set_nonblocking(false).ok();
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            let mut hello = [0u8; 5];
            if stream.read_exact(&mut hello[..1]).is_err() {
                return;
            }
            let rest = if hello[0] == 0x01 { 2 } else { 4 };
            if stream.read_exact(&mut hello[1..1 + rest]).is_err() {
                return;
            }
            while let Ok(msg) = read_message(&mut stream) {
                if tx.send((Instant::now(), msg)).is_err() {
                    return;
                }
            }
        });
        rx
    }

    fn lingering(linger: Duration, max_frames: usize) -> BatchConfig {
        BatchConfig {
            max_frames,
            max_bytes: 1024 * 1024,
            linger: Nanos(linger.as_nanos() as u64),
        }
    }

    #[test]
    fn filled_batch_flushes_immediately_mid_linger() {
        // Regression test for the hard-sleep linger: with a 5 s linger a
        // batch that FILLS mid-linger must still hit the wire at once —
        // the writer waits on the queue condvar, not the clock.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let msgs = accept_ring(listener);
        let (events_tx, _events_rx) = unbounded::<Event>();
        let out = connect_ring_out(
            ServerId(0),
            ServerId(1),
            0,
            addr,
            events_tx,
            5,
            lingering(Duration::from_secs(5), 2),
        );
        out.push(vec![test_frame(1)]);
        thread::sleep(Duration::from_millis(50));
        let pushed = Instant::now();
        out.push(vec![test_frame(2)]);
        let (arrived, msg) = msgs
            .recv_timeout(Duration::from_secs(2))
            .expect("filled batch stuck behind the linger sleep");
        assert!(
            arrived.duration_since(pushed) < Duration::from_secs(1),
            "batch waited out the linger instead of flushing on fill"
        );
        match msg {
            Message::RingBatch(frames) => assert_eq!(frames.len(), 2),
            other => panic!("expected the filled 2-frame batch, got {other}"),
        }
    }

    #[test]
    fn shutdown_mid_linger_flushes_and_exits_promptly() {
        // Dropping the handle mid-linger must flush the partial batch
        // right away instead of sleeping out the remaining linger.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let msgs = accept_ring(listener);
        let (events_tx, _events_rx) = unbounded::<Event>();
        let out = connect_ring_out(
            ServerId(0),
            ServerId(1),
            0,
            addr,
            events_tx,
            5,
            lingering(Duration::from_secs(5), 64),
        );
        out.push(vec![test_frame(1)]);
        thread::sleep(Duration::from_millis(50));
        let dropped = Instant::now();
        drop(out);
        let (arrived, msg) = msgs
            .recv_timeout(Duration::from_secs(2))
            .expect("shutdown waited out the linger");
        assert!(
            arrived.duration_since(dropped) < Duration::from_secs(1),
            "shutdown flush delayed by the linger"
        );
        assert!(matches!(msg, Message::Ring(_)));
    }

    #[test]
    fn lane_wal_dirs_nest_only_when_laned() {
        let base = Path::new("/tmp/wal");
        assert_eq!(lane_wal_dir(base, 0, 1), PathBuf::from("/tmp/wal"));
        assert_eq!(lane_wal_dir(base, 0, 4), PathBuf::from("/tmp/wal/lane-0"));
        assert_eq!(lane_wal_dir(base, 3, 4), PathBuf::from("/tmp/wal/lane-3"));
    }
}

/// `hts-mc` model of the [`RingShared`] drain/linger/shutdown handshake
/// (the manifest entry for this file in `mc-models.toml` points here).
/// Runs via `cargo test -p hts-net --features model-check` — the CI
/// `modelcheck` job. The model drives [`next_batch`] exactly as
/// [`ring_writer`] does, minus the socket.
#[cfg(all(test, feature = "model-check"))]
mod ring_model {
    use super::*;
    use hts_mc::{check, Mode, Options};
    use hts_types::{ObjectId, Tag, Value};

    fn frame(ts: u64) -> RingFrame {
        RingFrame::pre_write(ObjectId(1), Tag::new(ts, ServerId(0)), Value::from_u64(ts))
    }

    fn model_out() -> RingOut {
        RingOut {
            shared: Arc::new(RingShared {
                queue: DebugMutex::new(
                    "model.ring_writer.queue",
                    RingQueue {
                        frames: VecDeque::new(),
                        shutdown: false,
                    },
                ),
                ready: DebugCondvar::new(),
            }),
        }
    }

    /// One pusher (the main thread) + the writer loop: every pushed
    /// frame must be delivered exactly once, in push order, and the
    /// writer must terminate once the handle drops. `linger` and
    /// `max_frames` parameterize which of `next_batch`'s paths the
    /// schedule space reaches.
    fn push_drain_shutdown_model(linger: Duration, max_frames: usize) {
        let out = model_out();
        let shared = Arc::clone(&out.shared);
        let writer = hts_mc::spawn(move || {
            let mut got = Vec::new();
            while let Some((batch, _bytes)) = next_batch(&shared, max_frames, 1 << 20, linger) {
                got.extend(batch);
            }
            got
        });
        out.push(vec![frame(1)]);
        out.push(vec![frame(2), frame(3)]);
        drop(out); // flags shutdown; queued frames still flush
        let got = writer.join();
        let expected: Vec<RingFrame> = (1..=3).map(frame).collect();
        assert_eq!(got, expected, "frames lost, duplicated, or reordered");
    }

    #[test]
    fn drain_shutdown_handshake_exhaustive() {
        // linger zero: the handshake is pure block/drain/shutdown, small
        // enough for exhaustive DFS.
        let report = check(Mode::Exhaustive, Options::named("net-ring-drain"), || {
            push_drain_shutdown_model(Duration::ZERO, 2)
        });
        assert!(report.schedules > 1, "explored: {report:?}");
    }

    #[test]
    fn linger_topup_handshake_random() {
        // A huge linger forces the condvar top-up path: the writer must
        // still flush everything and exit promptly on shutdown (a hang
        // here would blow the step budget). The timeout branch itself is
        // a scheduling choice, so random search covers both wake paths.
        check(
            Mode::Random {
                seed: 0x4E54_5249_4E47,
                iters: 200,
            },
            Options::named("net-ring-linger"),
            || push_drain_shutdown_model(Duration::from_secs(3600), 2),
        );
    }

    #[test]
    fn two_pushers_never_lose_frames_exhaustive() {
        // Two concurrent pushers: per-pusher FIFO must survive any
        // interleaving of the pushes with the drain.
        check(Mode::Exhaustive, Options::named("net-ring-2push"), || {
            let out = Arc::new(model_out());
            let shared = Arc::clone(&out.shared);
            let writer = hts_mc::spawn(move || {
                let mut got = Vec::new();
                while let Some((batch, _)) = next_batch(&shared, 4, 1 << 20, Duration::ZERO) {
                    got.extend(batch);
                }
                got
            });
            let o2 = Arc::clone(&out);
            let pusher = hts_mc::spawn(move || o2.push(vec![frame(10), frame(11)]));
            out.push(vec![frame(20)]);
            pusher.join();
            drop(Arc::into_inner(out).expect("last handle")); // shutdown
            let got = writer.join();
            let tens: Vec<&RingFrame> = got
                .iter()
                .filter(|f| f == &&frame(10) || f == &&frame(11))
                .collect();
            assert_eq!(tens, vec![&frame(10), &frame(11)], "pusher FIFO broken");
            assert_eq!(got.len(), 3, "frame lost or duplicated: {got:?}");
        });
    }
}
