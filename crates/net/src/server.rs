//! The threaded TCP server runtime.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use hts_core::{Action, Config, Durability, MultiObjectServer};
use hts_types::{codec::Hello, ClientId, Message, RingFrame, ServerId};
use hts_wal::{recover, FsyncPolicy, Recovery, Wal, WalOptions, WalRecord};

use crate::framing::{read_message, write_message};

/// Static deployment description handed to every [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// This server's id.
    pub id: ServerId,
    /// Listen addresses of **all** servers, indexed by [`ServerId`].
    pub addrs: Vec<SocketAddr>,
    /// Protocol options.
    pub config: Config,
    /// Write-ahead-log directory. With a persistent
    /// [`Config::durability`](hts_core::Config), committed writes are
    /// logged here before client acks go out, and a server whose
    /// directory already holds a log boots in **restart** mode: it
    /// restores its registers from snapshot + log tail, announces its
    /// rejoin around the ring, resyncs from its new predecessor and only
    /// then serves — converting the paper's crash-stop model into
    /// crash-recovery.
    pub wal_dir: Option<PathBuf>,
}

enum Event {
    /// A message arrived from a client connection.
    FromClient(ClientId, Message),
    /// A ring frame arrived from the predecessor side.
    FromRing(RingFrame),
    /// A client connected; replies go into its sender.
    ClientUp(ClientId, Sender<Message>),
    /// A client connection died.
    ClientDown(ClientId),
    /// An inbound ring connection (from server `s`) died: `s` crashed.
    RingInDown(ServerId),
    /// The outbound ring connection (to server `s`) died: `s` crashed.
    RingOutDown(ServerId),
    /// Writing `frame` to server `s` failed. Not yet a crash verdict: a
    /// parked connection may simply predate the peer's restart (a
    /// non-adjacent server never observes the crash of a peer it was not
    /// connected to, so its parked entry can go stale silently). The
    /// event loop retries over a fresh connection and only declares the
    /// peer crashed if that also fails.
    RingWriteFailed(ServerId, RingFrame),
    /// The ring writer drained a frame: pull the next one.
    TxDone,
    /// Stop the event loop.
    Shutdown,
}

/// A running storage server (event loop + connection threads).
///
/// See the [crate docs](crate) for the runtime's shape; create whole local
/// clusters with [`Cluster`](crate::Cluster).
pub struct Server {
    events: Sender<Event>,
    handle: Option<JoinHandle<()>>,
    accept_alive: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `config.addrs[config.id]` and spawns the server. With a
    /// WAL directory and persistent durability, first recovers any
    /// existing log — a non-empty directory makes this a **restart**:
    /// the server rejoins the ring and resyncs before serving.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the listen address is unavailable, or
    /// the I/O error if log recovery / creation fails.
    pub fn spawn(config: ServerConfig) -> io::Result<Server> {
        let wal_state = match (&config.wal_dir, wal_fsync_policy(config.config.durability)) {
            (Some(dir), Some(fsync)) => {
                let recovery = recover(dir)?;
                let wal = Wal::open(
                    dir,
                    WalOptions {
                        fsync,
                        ..WalOptions::default()
                    },
                )?;
                Some((wal, recovery))
            }
            _ => None,
        };
        let addr = config.addrs[config.id.index()];
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (events_tx, events_rx) = unbounded::<Event>();
        let accept_alive = Arc::new(AtomicBool::new(true));

        // Accept loop.
        {
            let events = events_tx.clone();
            let alive = Arc::clone(&accept_alive);
            thread::spawn(move || accept_loop(listener, events, alive));
        }

        // Event loop.
        let handle = {
            let events = events_tx.clone();
            let rx = events_rx;
            thread::spawn(move || event_loop(config, rx, events, wal_state))
        };

        Ok(Server {
            events: events_tx,
            handle: Some(handle),
            accept_alive,
            addr,
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server (crashing it, from the cluster's point of view).
    pub fn shutdown(mut self) {
        self.accept_alive.store(false, Ordering::SeqCst);
        let _ = self.events.send(Event::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.accept_alive.store(false, Ordering::SeqCst);
        let _ = self.events.send(Event::Shutdown);
        // Threads exit on their own; not joined in drop (C-DTOR-BLOCK).
    }
}

fn accept_loop(listener: TcpListener, events: Sender<Event>, alive: Arc<AtomicBool>) {
    while alive.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let events = events.clone();
                thread::spawn(move || {
                    let _ = handle_connection(stream, events);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// Reads the handshake, then pumps messages into the event loop.
fn handle_connection(mut stream: TcpStream, events: Sender<Event>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut hello = [0u8; 5];
    stream.read_exact(&mut hello[..1])?;
    let peer = match hello[0] {
        0x01 => {
            stream.read_exact(&mut hello[1..3])?;
            Hello::decode(&hello[..3])
        }
        0x02 => {
            stream.read_exact(&mut hello[1..5])?;
            Hello::decode(&hello[..5])
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown hello role {other:#x}"),
            ))
        }
    }
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;

    match peer {
        Hello::Server(s) => {
            // Inbound ring connection: read frames until it dies.
            let mut reader = stream;
            loop {
                match read_message(&mut reader) {
                    Ok(Message::Ring(frame)) => {
                        if events.send(Event::FromRing(frame)).is_err() {
                            return Ok(());
                        }
                    }
                    Ok(_) => {} // only ring traffic is expected here
                    Err(_) => {
                        let _ = events.send(Event::RingInDown(s));
                        return Ok(());
                    }
                }
            }
        }
        Hello::Client(c) => {
            let (reply_tx, reply_rx) = unbounded::<Message>();
            if events.send(Event::ClientUp(c, reply_tx)).is_err() {
                return Ok(());
            }
            // Writer half.
            let mut writer = stream.try_clone()?;
            thread::spawn(move || {
                for msg in reply_rx {
                    if write_message(&mut writer, &msg).is_err() {
                        return;
                    }
                }
            });
            // Reader half.
            let mut reader = stream;
            loop {
                match read_message(&mut reader) {
                    Ok(msg) => {
                        if events.send(Event::FromClient(c, msg)).is_err() {
                            return Ok(());
                        }
                    }
                    Err(_) => {
                        let _ = events.send(Event::ClientDown(c));
                        return Ok(());
                    }
                }
            }
        }
    }
}

/// The outbound ring connection: a bounded(1) channel + writer thread, so
/// `TxDone` events pace `next_frame` pulls exactly like the simulator's
/// TX-idle callback. Keyed by peer in the event loop; connections to
/// peers that stop being the successor are parked, not closed (see the
/// event loop).
struct RingOut {
    frames: Sender<RingFrame>,
}

fn connect_ring_out(
    me: ServerId,
    to: ServerId,
    addr: SocketAddr,
    events: Sender<Event>,
    attempts: u32,
) -> io::Result<RingOut> {
    let mut stream = connect_with_retry(addr, attempts)?;
    stream.set_nodelay(true).ok();
    stream.write_all(&Hello::Server(me).encode())?;
    let (tx, rx): (Sender<RingFrame>, Receiver<RingFrame>) = bounded(1);
    thread::spawn(move || {
        for frame in rx {
            if write_message(&mut stream, &Message::Ring(frame.clone())).is_err() {
                let _ = events.send(Event::RingWriteFailed(to, frame));
                return;
            }
            if events.send(Event::TxDone).is_err() {
                return;
            }
        }
    });
    Ok(RingOut { frames: tx })
}

fn connect_with_retry(addr: SocketAddr, attempts: u32) -> io::Result<TcpStream> {
    let mut last = None;
    for attempt in 0..attempts {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                // No point sleeping after the last attempt — and these
                // retries run on the event-loop thread, so every sleep
                // stalls client traffic.
                if attempt + 1 < attempts {
                    thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("no attempts made")))
}

/// How a [`Durability`] setting maps onto the WAL's fsync policy
/// (`None` = no log at all).
fn wal_fsync_policy(durability: Durability) -> Option<FsyncPolicy> {
    match durability {
        Durability::Volatile => None,
        Durability::Buffered => Some(FsyncPolicy::OsDefault),
        Durability::SyncEveryN(n) => Some(FsyncPolicy::EveryN(n)),
        Durability::SyncAlways => Some(FsyncPolicy::Always),
    }
}

fn event_loop(
    config: ServerConfig,
    events: Receiver<Event>,
    events_tx: Sender<Event>,
    wal_state: Option<(Wal, Recovery)>,
) {
    let n = config.addrs.len() as u16;
    let mut core = MultiObjectServer::new(config.id, n, config.config.clone());
    let mut wal = None;
    if let Some((w, recovery)) = wal_state {
        // Restart path: restore the registers the log proves committed,
        // then announce the rejoin — reads queue until the announcement
        // makes it around the ring and back (the predecessor's recovery
        // stream is FIFO-ordered ahead of it).
        let restarting = recovery.had_log;
        core.restore_state(
            recovery
                .state
                .into_iter()
                .map(|(object, (tag, value))| (object, tag, value)),
        );
        if restarting {
            core.begin_rejoin();
        }
        wal = Some(w);
    }
    let mut clients: HashMap<ClientId, Sender<Message>> = HashMap::new();
    // Outbound ring connections by peer. The active one is the current
    // successor; older ones stay **parked**, not dropped — closing a
    // connection to a live peer would masquerade as our crash on its
    // side, and a later splice-back (rejoin) reuses the parked link.
    let mut ring_outs: HashMap<ServerId, RingOut> = HashMap::new();
    let mut active_out: Option<ServerId> = None;
    // Frames handed to the active writer but possibly still in its channel.
    let mut in_channel = 0u32;

    let ensure_ring_out = |core: &MultiObjectServer,
                           ring_outs: &mut HashMap<ServerId, RingOut>,
                           active_out: &mut Option<ServerId>,
                           in_channel: &mut u32| {
        let successor = core.successor();
        if *active_out == successor {
            return;
        }
        *active_out = None;
        *in_channel = 0;
        let Some(next) = successor else { return };
        if let std::collections::hash_map::Entry::Vacant(slot) = ring_outs.entry(next) {
            match connect_ring_out(
                config.id,
                next,
                config.addrs[next.index()],
                events_tx.clone(),
                40,
            ) {
                Ok(out) => {
                    slot.insert(out);
                }
                Err(_) => {
                    // The successor is unreachable: report it crashed.
                    let _ = events_tx.send(Event::RingOutDown(next));
                    return;
                }
            }
        }
        *active_out = Some(next);
    };

    let flush = |clients: &HashMap<ClientId, Sender<Message>>, actions: Vec<Action>| {
        for action in actions {
            let (client, msg) = match action {
                Action::WriteAck {
                    object,
                    client,
                    request,
                } => (client, Message::WriteAck { object, request }),
                Action::ReadReply {
                    object,
                    client,
                    request,
                    value,
                    ..
                } => (
                    client,
                    Message::ReadAck {
                        object,
                        request,
                        value,
                    },
                ),
            };
            if let Some(tx) = clients.get(&client) {
                let _ = tx.send(msg);
            }
        }
    };

    // Appends the core's freshly committed writes to the log. Runs
    // BEFORE actions flush, so under `SyncAlways` a client never sees an
    // ack whose write is not on stable storage. Returns `false` on an
    // unrecoverable log failure (the server then stops = crash-stop).
    let persist = |core: &mut MultiObjectServer, wal: &mut Option<Wal>| -> bool {
        let Some(wal) = wal.as_mut() else {
            // Persistent durability without a wal_dir: nothing to log,
            // but the core still accumulates commits — drain them or
            // they pile up forever.
            core.drain_commits();
            return true;
        };
        for (object, tag, value) in core.drain_commits() {
            if let Err(e) = wal.append(&WalRecord { object, tag, value }) {
                eprintln!(
                    "hts-net server {}: wal append failed ({e}); stopping to avoid \
                     acknowledging non-durable writes",
                    config.id
                );
                return false;
            }
        }
        if wal.wants_compaction() {
            let state: Vec<WalRecord> = core
                .export_state()
                .into_iter()
                .map(|(object, tag, value)| WalRecord { object, tag, value })
                .collect();
            if let Err(e) = wal.compact(&state) {
                // Non-fatal: the uncompacted log remains recoverable.
                eprintln!("hts-net server {}: wal compaction failed ({e})", config.id);
            }
        }
        true
    };

    let pump = |core: &mut MultiObjectServer,
                ring_outs: &mut HashMap<ServerId, RingOut>,
                active_out: &mut Option<ServerId>,
                in_channel: &mut u32| {
        // Keep at most one frame queued at the active writer.
        ensure_ring_out(core, ring_outs, active_out, in_channel);
        while *in_channel < 1 {
            let Some(active) = *active_out else { break };
            let Some(out) = ring_outs.get(&active) else {
                break;
            };
            match core.next_frame() {
                Some(frame) => {
                    if out.frames.send(frame).is_err() {
                        break; // writer died; RingOutDown will arrive
                    }
                    *in_channel += 1;
                }
                None => break,
            }
        }
    };

    // Prime the ring before the first inbound event: a freshly booted
    // server eagerly connects to its successor, and a *restarted* one
    // must push its rejoin announcement without waiting to be spoken to.
    pump(&mut core, &mut ring_outs, &mut active_out, &mut in_channel);

    for event in &events {
        let actions = match event {
            Event::Shutdown => return,
            Event::ClientUp(c, tx) => {
                clients.insert(c, tx);
                Vec::new()
            }
            Event::ClientDown(c) => {
                clients.remove(&c);
                Vec::new()
            }
            Event::FromClient(c, msg) => match msg {
                Message::WriteReq {
                    object,
                    request,
                    value,
                } => core.on_client_write(object, c, request, value),
                Message::ReadReq { object, request } => core.on_client_read(object, c, request),
                _ => Vec::new(),
            },
            Event::FromRing(frame) => core.on_frame(frame),
            Event::RingInDown(s) | Event::RingOutDown(s) => {
                // Any connection to the crashed server died with it; a
                // parked entry must not be reused after a rejoin.
                ring_outs.remove(&s);
                core.on_server_crashed(s)
            }
            Event::RingWriteFailed(s, frame) => {
                // The connection may just be stale (the peer restarted
                // while it sat parked): retry once over a fresh one.
                ring_outs.remove(&s);
                match connect_ring_out(config.id, s, config.addrs[s.index()], events_tx.clone(), 3)
                {
                    Ok(out) => {
                        // The peer is alive after all; re-send the frame
                        // that the dead socket swallowed.
                        let _ = out.frames.send(frame);
                        ring_outs.insert(s, out);
                        Vec::new()
                    }
                    Err(_) => core.on_server_crashed(s),
                }
            }
            Event::TxDone => {
                in_channel = in_channel.saturating_sub(1);
                Vec::new()
            }
        };
        if !persist(&mut core, &mut wal) {
            return;
        }
        flush(&clients, actions);
        pump(&mut core, &mut ring_outs, &mut active_out, &mut in_channel);
    }
}
