//! The threaded TCP server runtime.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use hts_core::{Action, Config, MultiObjectServer};
use hts_types::{codec::Hello, ClientId, Message, RingFrame, ServerId};

use crate::framing::{read_message, write_message};

/// Static deployment description handed to every [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// This server's id.
    pub id: ServerId,
    /// Listen addresses of **all** servers, indexed by [`ServerId`].
    pub addrs: Vec<SocketAddr>,
    /// Protocol options.
    pub config: Config,
}

enum Event {
    /// A message arrived from a client connection.
    FromClient(ClientId, Message),
    /// A ring frame arrived from the predecessor side.
    FromRing(RingFrame),
    /// A client connected; replies go into its sender.
    ClientUp(ClientId, Sender<Message>),
    /// A client connection died.
    ClientDown(ClientId),
    /// An inbound ring connection (from server `s`) died: `s` crashed.
    RingInDown(ServerId),
    /// The outbound ring connection (to server `s`) died: `s` crashed.
    RingOutDown(ServerId),
    /// The ring writer drained a frame: pull the next one.
    TxDone,
    /// Stop the event loop.
    Shutdown,
}

/// A running storage server (event loop + connection threads).
///
/// See the [crate docs](crate) for the runtime's shape; create whole local
/// clusters with [`Cluster`](crate::Cluster).
pub struct Server {
    events: Sender<Event>,
    handle: Option<JoinHandle<()>>,
    accept_alive: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `config.addrs[config.id]` and spawns the server.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the listen address is unavailable.
    pub fn spawn(config: ServerConfig) -> io::Result<Server> {
        let addr = config.addrs[config.id.index()];
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (events_tx, events_rx) = unbounded::<Event>();
        let accept_alive = Arc::new(AtomicBool::new(true));

        // Accept loop.
        {
            let events = events_tx.clone();
            let alive = Arc::clone(&accept_alive);
            thread::spawn(move || accept_loop(listener, events, alive));
        }

        // Event loop.
        let handle = {
            let events = events_tx.clone();
            let rx = events_rx;
            thread::spawn(move || event_loop(config, rx, events))
        };

        Ok(Server {
            events: events_tx,
            handle: Some(handle),
            accept_alive,
            addr,
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server (crashing it, from the cluster's point of view).
    pub fn shutdown(mut self) {
        self.accept_alive.store(false, Ordering::SeqCst);
        let _ = self.events.send(Event::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.accept_alive.store(false, Ordering::SeqCst);
        let _ = self.events.send(Event::Shutdown);
        // Threads exit on their own; not joined in drop (C-DTOR-BLOCK).
    }
}

fn accept_loop(listener: TcpListener, events: Sender<Event>, alive: Arc<AtomicBool>) {
    while alive.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let events = events.clone();
                thread::spawn(move || {
                    let _ = handle_connection(stream, events);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// Reads the handshake, then pumps messages into the event loop.
fn handle_connection(mut stream: TcpStream, events: Sender<Event>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut hello = [0u8; 5];
    stream.read_exact(&mut hello[..1])?;
    let peer = match hello[0] {
        0x01 => {
            stream.read_exact(&mut hello[1..3])?;
            Hello::decode(&hello[..3])
        }
        0x02 => {
            stream.read_exact(&mut hello[1..5])?;
            Hello::decode(&hello[..5])
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown hello role {other:#x}"),
            ))
        }
    }
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;

    match peer {
        Hello::Server(s) => {
            // Inbound ring connection: read frames until it dies.
            let mut reader = stream;
            loop {
                match read_message(&mut reader) {
                    Ok(Message::Ring(frame)) => {
                        if events.send(Event::FromRing(frame)).is_err() {
                            return Ok(());
                        }
                    }
                    Ok(_) => {} // only ring traffic is expected here
                    Err(_) => {
                        let _ = events.send(Event::RingInDown(s));
                        return Ok(());
                    }
                }
            }
        }
        Hello::Client(c) => {
            let (reply_tx, reply_rx) = unbounded::<Message>();
            if events.send(Event::ClientUp(c, reply_tx)).is_err() {
                return Ok(());
            }
            // Writer half.
            let mut writer = stream.try_clone()?;
            thread::spawn(move || {
                for msg in reply_rx {
                    if write_message(&mut writer, &msg).is_err() {
                        return;
                    }
                }
            });
            // Reader half.
            let mut reader = stream;
            loop {
                match read_message(&mut reader) {
                    Ok(msg) => {
                        if events.send(Event::FromClient(c, msg)).is_err() {
                            return Ok(());
                        }
                    }
                    Err(_) => {
                        let _ = events.send(Event::ClientDown(c));
                        return Ok(());
                    }
                }
            }
        }
    }
}

/// The outbound ring connection: a bounded(1) channel + writer thread, so
/// `TxDone` events pace `next_frame` pulls exactly like the simulator's
/// TX-idle callback.
struct RingOut {
    to: ServerId,
    frames: Sender<RingFrame>,
}

fn connect_ring_out(
    me: ServerId,
    to: ServerId,
    addr: SocketAddr,
    events: Sender<Event>,
) -> io::Result<RingOut> {
    let mut stream = connect_with_retry(addr, 40)?;
    stream.set_nodelay(true).ok();
    stream.write_all(&Hello::Server(me).encode())?;
    let (tx, rx): (Sender<RingFrame>, Receiver<RingFrame>) = bounded(1);
    thread::spawn(move || {
        for frame in rx {
            if write_message(&mut stream, &Message::Ring(frame)).is_err() {
                let _ = events.send(Event::RingOutDown(to));
                return;
            }
            if events.send(Event::TxDone).is_err() {
                return;
            }
        }
    });
    Ok(RingOut { to, frames: tx })
}

fn connect_with_retry(addr: SocketAddr, attempts: u32) -> io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..attempts {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("no attempts made")))
}

fn event_loop(config: ServerConfig, events: Receiver<Event>, events_tx: Sender<Event>) {
    let n = config.addrs.len() as u16;
    let mut core = MultiObjectServer::new(config.id, n, config.config.clone());
    let mut clients: HashMap<ClientId, Sender<Message>> = HashMap::new();
    let mut ring_out: Option<RingOut> = None;
    // Frames handed to the writer but possibly still in its channel.
    let mut in_channel = 0u32;

    let ensure_ring_out = |core: &MultiObjectServer,
                               ring_out: &mut Option<RingOut>,
                               in_channel: &mut u32| {
        let successor = core.successor();
        let connected_to = ring_out.as_ref().map(|r| r.to);
        if connected_to != successor {
            *ring_out = None;
            *in_channel = 0;
            if let Some(next) = successor {
                match connect_ring_out(
                    config.id,
                    next,
                    config.addrs[next.index()],
                    events_tx.clone(),
                ) {
                    Ok(out) => *ring_out = Some(out),
                    Err(_) => {
                        // The successor is unreachable: report it crashed.
                        let _ = events_tx.send(Event::RingOutDown(next));
                    }
                }
            }
        }
    };

    let flush = |clients: &HashMap<ClientId, Sender<Message>>, actions: Vec<Action>| {
        for action in actions {
            let (client, msg) = match action {
                Action::WriteAck {
                    object,
                    client,
                    request,
                } => (client, Message::WriteAck { object, request }),
                Action::ReadReply {
                    object,
                    client,
                    request,
                    value,
                    ..
                } => (
                    client,
                    Message::ReadAck {
                        object,
                        request,
                        value,
                    },
                ),
            };
            if let Some(tx) = clients.get(&client) {
                let _ = tx.send(msg);
            }
        }
    };

    for event in &events {
        match event {
            Event::Shutdown => return,
            Event::ClientUp(c, tx) => {
                clients.insert(c, tx);
            }
            Event::ClientDown(c) => {
                clients.remove(&c);
            }
            Event::FromClient(c, msg) => {
                let actions = match msg {
                    Message::WriteReq {
                        object,
                        request,
                        value,
                    } => core.on_client_write(object, c, request, value),
                    Message::ReadReq { object, request } => {
                        core.on_client_read(object, c, request)
                    }
                    _ => Vec::new(),
                };
                flush(&clients, actions);
            }
            Event::FromRing(frame) => {
                let actions = core.on_frame(frame);
                flush(&clients, actions);
            }
            Event::RingInDown(s) | Event::RingOutDown(s) => {
                let actions = core.on_server_crashed(s);
                flush(&clients, actions);
            }
            Event::TxDone => {
                in_channel = in_channel.saturating_sub(1);
            }
        }
        // Pump the ring: keep at most one frame queued at the writer.
        ensure_ring_out(&core, &mut ring_out, &mut in_channel);
        while in_channel < 1 {
            let Some(out) = ring_out.as_ref() else { break };
            match core.next_frame() {
                Some(frame) => {
                    if out.frames.send(frame).is_err() {
                        break; // writer died; RingOutDown will arrive
                    }
                    in_channel += 1;
                }
                None => break,
            }
        }
    }
}
