//! The readiness-driven (epoll reactor) backend: one poller thread per
//! ring lane owns every socket.
//!
//! Where the threaded backend spends a thread per connection (reader
//! per inbound stream, writer per client and ring peer), this backend
//! runs each lane as a single epoll-driven loop that accepts the same
//! events — client requests, inbound ring frames, outbound write
//! readiness, connect completions — as readiness reports on one
//! `epoll` instance (`hts-poll`). A node therefore runs on exactly
//! `lanes + 1` threads (the `+ 1` is the shared acceptor) regardless
//! of how many clients or peers connect.
//!
//! Wire behaviour is byte-identical to the threaded backend: the same
//! handshakes, the same `RingBatch` coalescing and linger rules, the
//! same TxDone-equivalent pipeline pacing (credit on full drain of a
//! staged batch), and the same one-fresh-connection-retry crash
//! verdict. The equivalence tests in `tests/` run the whole suite
//! under both backends.
//!
//! Thread roles:
//!
//! * **acceptor** — owns the listener plus every connection still mid
//!   handshake; a completed hello hands the socket to its lane (ring
//!   streams to the lane the handshake names, clients to their home
//!   lane, `ClientId % lanes`) over an inject channel + eventfd wake.
//! * **lane** — owns its protocol core, WAL, fast-path cells and every
//!   socket routed to it. Cross-lane client traffic travels as
//!   [`Inject`] messages between lanes (requests to the object's lane,
//!   replies back to the socket's home lane).
//!
//! Shutdown is deterministic: `ReactorHandle::stop` flips the shared
//! flag, wakes every thread, and joins them; each lane deregisters and
//! closes every fd it owns before exiting, and the acceptor drops the
//! listener, so the listen port is immediately rebindable.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use hts_core::{Action, BatchConfig, LaneMap, MultiObjectServer, ReadCellRegistry};
use hts_poll::{
    connect_nonblocking, read_nb, Event, Events, Interest, Poller, ReadStatus, Token, Waker,
    WriteBuf,
};
use hts_types::codec::Hello;
use hts_types::{codec, ClientId, Message, RingFrame, ServerId, Value};
use hts_wal::{Recovery, Wal};

use crate::framing::{encode_ring_frames, frame_into, MessagePoll, NbMessageReader};
use crate::server::{
    action_into_message, build_core, drain_batch, note_crash_verdict, persist_commits,
    recover_lanes, LaneConfig, Server, ServerConfig, ThreadTally,
};

/// Token 0 is every poller's eventfd waker.
const WAKER_TOKEN: u64 = 0;
/// The acceptor's listener registers under token 1.
const LISTENER_TOKEN: u64 = 1;
/// How long a nonblocking connect may stay in progress before the
/// attempt counts as failed.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);
/// Pause between successor connect attempts (mirrors the threaded
/// writer's condvar backoff).
const CONNECT_BACKOFF: Duration = Duration::from_millis(50);
/// Connect attempts for a normal successor link (threaded parity).
const CONNECT_ATTEMPTS: u32 = 40;
/// Connect attempts for the one-fresh-connection retry after a write
/// failure (threaded parity).
const RETRY_ATTEMPTS: u32 = 3;

/// Handle to a running reactor: the shared shutdown flag plus one waker
/// and join handle per thread (lanes, then the acceptor).
pub(crate) struct ReactorHandle {
    shutdown: Arc<AtomicBool>,
    wakers: Vec<Arc<Waker>>,
    handles: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Signals every thread and (with `join`) waits them out. Safe to
    /// call more than once: joined handles drain on the first call.
    pub(crate) fn stop(&mut self, join: bool) {
        self.shutdown.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
        if join {
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// Spawns the reactor backend for `config`: binds the listen address,
/// recovers every lane's WAL, and starts `lanes` poller threads plus
/// the acceptor. All pollers, wakers and channels are created before
/// any thread spawns, so setup errors abort cleanly.
pub(crate) fn spawn(config: ServerConfig) -> io::Result<Server> {
    let lanes = usize::from(config.config.lanes.max(1));
    let wal_states = recover_lanes(&config)?;
    let listen = config.addrs[config.id.index()];
    let listener = TcpListener::bind(listen)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let cells: Vec<Arc<ReadCellRegistry>> = (0..lanes)
        .map(|_| Arc::new(ReadCellRegistry::new()))
        .collect();

    let mut plumbing = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new(&poller, Token(WAKER_TOKEN))?);
        let (tx, rx) = unbounded::<Inject>();
        plumbing.push((poller, waker, tx, rx));
    }
    let peers: Vec<(Sender<Inject>, Arc<Waker>)> = plumbing
        .iter()
        .map(|(_, waker, tx, _)| (tx.clone(), Arc::clone(waker)))
        .collect();
    let acc_poller = Poller::new()?;
    let acc_waker = Arc::new(Waker::new(&acc_poller, Token(WAKER_TOKEN))?);
    acc_poller.register(
        listener.as_raw_fd(),
        Token(LISTENER_TOKEN),
        Interest::READABLE,
    )?;

    let mut wakers: Vec<Arc<Waker>> = plumbing
        .iter()
        .map(|(_, waker, _, _)| Arc::clone(waker))
        .collect();
    wakers.push(Arc::clone(&acc_waker));

    let mut handles = Vec::with_capacity(lanes + 1);
    for (lane, ((poller, waker, _tx, injects), wal_state)) in
        plumbing.into_iter().zip(wal_states).enumerate()
    {
        let lc = LaneConfig {
            lane: lane as u16,
            id: config.id,
            addrs: config.addrs.clone(),
            config: config.config.clone(),
        };
        let state = Lane::new(
            lc,
            LanePlumbing {
                poller,
                waker,
                injects,
                peers: peers.clone(),
                cells: cells.clone(),
                shutdown: Arc::clone(&shutdown),
            },
            wal_state,
        );
        handles.push(thread::spawn(move || state.run()));
    }
    {
        let acceptor = Acceptor {
            listener,
            poller: acc_poller,
            waker: acc_waker,
            peers,
            shutdown: Arc::clone(&shutdown),
            pending: HashMap::new(),
            next_token: LISTENER_TOKEN + 1,
        };
        handles.push(thread::spawn(move || acceptor.run()));
    }

    Ok(Server::from_reactor(
        ReactorHandle {
            shutdown,
            wakers,
            handles,
        },
        addr,
    ))
}

/// Work handed to a lane thread by the acceptor or a sibling lane.
enum Inject {
    /// A handshaken inbound ring stream from server `s`.
    NewRing(ServerId, TcpStream),
    /// A handshaken client connection this lane will own.
    NewClient(ClientId, TcpStream),
    /// A client connected somewhere: its socket lives on `home` lane
    /// (sent to every *other* lane before the home lane learns of the
    /// socket, so reply routes always exist before requests route).
    ClientUp(ClientId, u16),
    /// A client's connection died; drop its reply route.
    ClientDown(ClientId),
    /// A request from client `c` for one of this lane's objects,
    /// forwarded by the lane that owns the socket.
    FromClient(ClientId, Message),
    /// A reply for client `c`, routed back to the lane owning its
    /// socket.
    Reply(ClientId, Message),
}

/// What kind of connection a poller token identifies.
enum SlotKind {
    Client,
    RingIn,
    RingOut(ServerId),
}

/// Where a client's replies go: a socket on this lane, or a sibling
/// lane that owns the socket.
enum ClientRoute {
    Local(u64),
    Remote(u16),
}

struct ClientConn {
    token: u64,
    stream: TcpStream,
    id: ClientId,
    reader: NbMessageReader,
    out: WriteBuf,
    /// Whether the registration currently includes write interest.
    writing: bool,
}

struct RingInConn {
    stream: TcpStream,
    from: ServerId,
    reader: NbMessageReader,
}

/// Outbound successor link lifecycle. `Waiting` holds no fd (between
/// connect attempts); `Connecting` is a nonblocking connect in flight.
enum OutState {
    Waiting {
        retry_at: Instant,
    },
    Connecting {
        stream: TcpStream,
        deadline: Instant,
    },
    Ready(TcpStream),
}

/// One outbound ring connection. At most one encoded batch is staged
/// in `out` at a time: `unacked` holds its frames until the buffer
/// fully drains (the TxDone-equivalent moment — pipeline credit and
/// strike clearing happen there), `pending` holds frames the pump has
/// claimed from the core but not yet staged.
struct OutConn {
    token: u64,
    peer: ServerId,
    state: OutState,
    pending: VecDeque<RingFrame>,
    unacked: Vec<RingFrame>,
    out: WriteBuf,
    attempts_left: u32,
    linger_until: Option<Instant>,
    /// Whether the registration currently includes write interest.
    writing: bool,
    /// When the currently staged batch was encoded (`now_nanos`; 0 =
    /// none staged). Feeds `hts_net_ring_write_nanos`: the wall time a
    /// batch takes to fully drain into the socket, the reactor's
    /// equivalent of the threaded writer's per-batch send time.
    staged_at: u64,
}

/// Which timer on an [`OutConn`] came due.
enum Due {
    Retry,
    ConnectTimeout,
    Linger,
}

/// Everything a lane shares with the rest of the reactor.
struct LanePlumbing {
    poller: Poller,
    waker: Arc<Waker>,
    injects: Receiver<Inject>,
    peers: Vec<(Sender<Inject>, Arc<Waker>)>,
    cells: Vec<Arc<ReadCellRegistry>>,
    shutdown: Arc<AtomicBool>,
}

struct Lane {
    lc: LaneConfig,
    batching: BatchConfig,
    linger: Duration,
    pipeline_cap: usize,
    core: MultiObjectServer,
    wal: Option<Wal>,
    poller: Poller,
    waker: Arc<Waker>,
    injects: Receiver<Inject>,
    peers: Vec<(Sender<Inject>, Arc<Waker>)>,
    map: LaneMap,
    cells: Vec<Arc<ReadCellRegistry>>,
    shutdown: Arc<AtomicBool>,
    next_token: u64,
    slots: HashMap<u64, SlotKind>,
    client_conns: HashMap<u64, ClientConn>,
    clients: HashMap<ClientId, ClientRoute>,
    ring_ins: HashMap<u64, RingInConn>,
    ring_outs: HashMap<ServerId, OutConn>,
    /// The current successor's peer id (its link may be mid-connect).
    active_out: Option<ServerId>,
    /// Frames claimed from the core and not yet fully written (active
    /// link only) — the pipeline pacing counter.
    in_channel: u32,
    /// Peers on their one-fresh-connection second chance.
    retried: HashSet<ServerId>,
    scratch: BytesMut,
    actions: Vec<Action>,
    dirty: Vec<u64>,
}

impl Lane {
    fn new(lc: LaneConfig, plumbing: LanePlumbing, wal_state: Option<(Wal, Recovery)>) -> Lane {
        let n = lc.addrs.len() as u16;
        let lanes = lc.config.lanes.max(1);
        let batching = lc.config.batching.normalized();
        let linger = Duration::from_nanos(batching.linger.as_nanos());
        // Frames the lane may hand its staged/pending buffers ahead of
        // drain acknowledgement: one batch on the wire, one queued
        // behind it (threaded parity).
        let pipeline_cap = batching.max_frames.max(1) * 2;
        let cell = Arc::clone(&plumbing.cells[usize::from(lc.lane)]);
        let (core, wal) = build_core(lc.id, n, lc.config.clone(), wal_state, cell);
        Lane {
            lc,
            batching,
            linger,
            pipeline_cap,
            core,
            wal,
            poller: plumbing.poller,
            waker: plumbing.waker,
            injects: plumbing.injects,
            peers: plumbing.peers,
            map: LaneMap::new(lanes),
            cells: plumbing.cells,
            shutdown: plumbing.shutdown,
            next_token: WAKER_TOKEN + 1,
            slots: HashMap::new(),
            client_conns: HashMap::new(),
            clients: HashMap::new(),
            ring_ins: HashMap::new(),
            ring_outs: HashMap::new(),
            active_out: None,
            in_channel: 0,
            retried: HashSet::new(),
            scratch: BytesMut::new(),
            actions: Vec::new(),
            dirty: Vec::new(),
        }
    }

    fn run(mut self) {
        let _tally = ThreadTally::new();
        let mut events = Events::with_capacity(256);
        // Prime the ring before the first inbound event: a freshly
        // booted server eagerly connects to its successor, and a
        // *restarted* one must push its rejoin announcement without
        // waiting to be spoken to.
        self.pump();
        self.flush_dirty();
        loop {
            let timeout = self.next_timeout();
            if self.poll_ready(&mut events, timeout).is_err() {
                break;
            }
            for ev in events.iter() {
                self.dispatch_event(ev);
            }
            self.drain_injects();
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            self.handle_timers();
            // Group-commit BEFORE replies flush: a client never sees
            // an ack whose write is not on stable storage.
            if !persist_commits(&mut self.core, &mut self.wal, self.lc.id, self.lc.lane) {
                break;
            }
            self.flush_actions();
            self.pump();
            self.flush_dirty();
        }
        self.teardown();
    }

    /// One epoll wait plus its bookkeeping. Hot: alloc-free.
    fn poll_ready(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let n = self.poller.wait(events, timeout)?;
        hts_metrics::counter!("hts_net_reactor_wakeups_total").inc();
        hts_metrics::histogram!("hts_net_reactor_events_per_wake").record(n as u64);
        Ok(n)
    }

    /// Routes one readiness report to its connection's handler. Hot:
    /// the dispatch shell itself is alloc-free.
    fn dispatch_event(&mut self, ev: Event) {
        let token = ev.token().0;
        if token == WAKER_TOKEN {
            self.waker.drain();
            return;
        }
        match self.slots.get(&token) {
            Some(SlotKind::Client) => self.on_client_event(token),
            Some(SlotKind::RingIn) => self.on_ring_in_event(token),
            Some(&SlotKind::RingOut(peer)) => self.on_out_event(peer, ev),
            None => {}
        }
    }

    fn teardown(&mut self) {
        for (_, conn) in self.client_conns.drain() {
            self.poller.deregister(conn.stream.as_raw_fd());
        }
        for (_, conn) in self.ring_ins.drain() {
            self.poller.deregister(conn.stream.as_raw_fd());
        }
        for (_, conn) in self.ring_outs.drain() {
            match &conn.state {
                OutState::Connecting { stream, .. } | OutState::Ready(stream) => {
                    self.poller.deregister(stream.as_raw_fd());
                }
                OutState::Waiting { .. } => {}
            }
        }
        self.slots.clear();
    }

    // ---- client connections ------------------------------------------

    fn on_client_event(&mut self, token: u64) {
        let Some(mut conn) = self.client_conns.remove(&token) else {
            return;
        };
        loop {
            match conn.reader.poll(&mut conn.stream) {
                Ok(MessagePoll::Msg(msg)) => self.on_client_msg(&mut conn, msg),
                Ok(MessagePoll::Pending) => break,
                Ok(MessagePoll::Closed) | Err(_) => {
                    self.client_down(token, conn);
                    return;
                }
            }
        }
        // Coalesce the burst's inline replies (fast reads, stats) into
        // one flush; a writable-only event resumes a partial write the
        // same way.
        if self.flush_client(&mut conn).is_err() {
            self.client_down(token, conn);
            return;
        }
        self.client_conns.insert(token, conn);
    }

    fn on_client_msg(&mut self, conn: &mut ClientConn, msg: Message) {
        let c = conn.id;
        match msg {
            // The lock-free read fast path, same predicate and counters
            // as the threaded reader thread: answer from the published
            // snapshot cell without touching the protocol core.
            Message::ReadReq { object, request } if self.lc.config.read_fast_path => {
                let lane = usize::from(self.map.lane_of(object));
                if let Some((_, value)) = self.cells[lane].try_read(object) {
                    hts_metrics::counter!("hts_net_read_fastpath_hits_total").inc();
                    self.queue_reply(
                        conn,
                        &Message::ReadAck {
                            object,
                            request,
                            value,
                        },
                    );
                } else {
                    hts_metrics::counter!("hts_net_read_fastpath_fallbacks_total").inc();
                    self.route_request(c, Message::ReadReq { object, request });
                }
            }
            // Answered from the process-wide registry without touching
            // the protocol core: stats are observational and never
            // consume an op slot.
            Message::StatsRequest { request } => {
                let reply = Message::StatsReply {
                    request,
                    text: Value::from(hts_metrics::render().into_bytes()),
                };
                self.queue_reply(conn, &reply);
            }
            Message::WriteReq { .. } | Message::ReadReq { .. } => self.route_request(c, msg),
            // Clients never send replies or ring traffic; drop them by
            // name so a new wire variant forces a decision here.
            Message::WriteAck { .. }
            | Message::ReadAck { .. }
            | Message::StatsReply { .. }
            | Message::Ring(_)
            | Message::RingBatch(_) => {}
        }
    }

    /// Hands a request to its object's lane: this lane's core, or a
    /// sibling via inject.
    fn route_request(&mut self, c: ClientId, msg: Message) {
        let lane = usize::from(self.map.lane_of(msg.object()));
        if lane == usize::from(self.lc.lane) {
            self.on_routed_request(c, msg);
        } else {
            self.send_inject(lane, Inject::FromClient(c, msg));
        }
    }

    fn on_routed_request(&mut self, c: ClientId, msg: Message) {
        let acts = match msg {
            Message::WriteReq {
                object,
                request,
                value,
            } => self.core.on_client_write(object, c, request, value),
            Message::ReadReq { object, request } => self.core.on_client_read(object, c, request),
            // Only requests route here (`on_client_msg` filtered the
            // rest); drop the others by name so a new wire variant
            // forces a decision.
            Message::WriteAck { .. }
            | Message::ReadAck { .. }
            | Message::StatsRequest { .. }
            | Message::StatsReply { .. }
            | Message::Ring(_)
            | Message::RingBatch(_) => return,
        };
        self.actions.extend(acts);
    }

    fn queue_reply(&mut self, conn: &mut ClientConn, msg: &Message) {
        self.scratch.clear();
        frame_into(&mut self.scratch, msg);
        conn.out.push(&self.scratch);
    }

    /// Flushes a client's pending replies and keeps its write interest
    /// in sync (armed only while bytes wait on the socket).
    fn flush_client(&mut self, conn: &mut ClientConn) -> io::Result<()> {
        let drained = conn.out.is_empty() || conn.out.flush(&mut conn.stream)?;
        if !drained && !conn.writing {
            conn.writing = true;
            self.poller
                .reregister(conn.stream.as_raw_fd(), Token(conn.token), Interest::BOTH)
                .ok();
        } else if drained && conn.writing {
            conn.writing = false;
            self.poller
                .reregister(
                    conn.stream.as_raw_fd(),
                    Token(conn.token),
                    Interest::READABLE,
                )
                .ok();
        }
        Ok(())
    }

    fn client_down(&mut self, token: u64, conn: ClientConn) {
        self.poller.deregister(conn.stream.as_raw_fd());
        self.slots.remove(&token);
        if matches!(self.clients.get(&conn.id), Some(ClientRoute::Local(t)) if *t == token) {
            self.clients.remove(&conn.id);
        }
        for lane in 0..self.peers.len() {
            if lane != usize::from(self.lc.lane) {
                self.send_inject(lane, Inject::ClientDown(conn.id));
            }
        }
    }

    // ---- inbound ring connections ------------------------------------

    fn on_ring_in_event(&mut self, token: u64) {
        let Some(mut conn) = self.ring_ins.remove(&token) else {
            return;
        };
        loop {
            match conn.reader.poll(&mut conn.stream) {
                Ok(MessagePoll::Msg(Message::Ring(frame))) => {
                    let acts = self.core.on_frame(frame);
                    self.actions.extend(acts);
                }
                Ok(MessagePoll::Msg(Message::RingBatch(frames))) => {
                    for frame in frames {
                        let acts = self.core.on_frame(frame);
                        self.actions.extend(acts);
                    }
                }
                // Requests, replies and stats never arrive on a ring
                // stream; drop them by name so a new wire variant
                // forces a decision here.
                Ok(MessagePoll::Msg(
                    Message::WriteReq { .. }
                    | Message::ReadReq { .. }
                    | Message::WriteAck { .. }
                    | Message::ReadAck { .. }
                    | Message::StatsRequest { .. }
                    | Message::StatsReply { .. },
                )) => {}
                Ok(MessagePoll::Pending) => break,
                Ok(MessagePoll::Closed) | Err(_) => {
                    self.ring_in_down(token, conn);
                    return;
                }
            }
        }
        self.ring_ins.insert(token, conn);
    }

    fn ring_in_down(&mut self, token: u64, conn: RingInConn) {
        self.poller.deregister(conn.stream.as_raw_fd());
        self.slots.remove(&token);
        let s = conn.from;
        drop(conn);
        // Any connection to the crashed server died with it; a parked
        // entry must not be reused after a rejoin. `active_out` and the
        // pipeline counter are left to `ensure_ring_out`, which resets
        // them once the core's successor moves past `s`.
        if let Some(out) = self.ring_outs.remove(&s) {
            self.drop_out_sockets(&out);
        }
        self.retried.remove(&s);
        note_crash_verdict(self.lc.id, self.lc.lane, s);
        let acts = self.core.on_server_crashed(s);
        self.actions.extend(acts);
    }

    // ---- outbound ring connections -----------------------------------

    fn on_out_event(&mut self, peer: ServerId, ev: Event) {
        let Some(mut conn) = self.ring_outs.remove(&peer) else {
            return;
        };
        if self.drive_out(&mut conn, ev) {
            self.update_out_interest(&mut conn);
            self.ring_outs.insert(peer, conn);
        } else {
            self.fail_out(conn);
        }
    }

    /// Advances one outbound link on a readiness report. Returns
    /// `false` when the link failed (caller runs the strike logic).
    fn drive_out(&mut self, conn: &mut OutConn, ev: Event) -> bool {
        let connect_result = match &mut conn.state {
            // No fd in this state; a stale event for a closed fd.
            OutState::Waiting { .. } => return true,
            OutState::Connecting { stream, .. } => {
                if ev.is_error() {
                    Some(false)
                } else if ev.writable() {
                    // Writable resolves the attempt; SO_ERROR says how.
                    Some(matches!(stream.take_error(), Ok(None)))
                } else {
                    None
                }
            }
            OutState::Ready(_) => None,
        };
        match connect_result {
            Some(true) => self.finish_connect(conn),
            Some(false) => return self.connect_failed(conn),
            None => {}
        }
        if !matches!(conn.state, OutState::Ready(_)) {
            return true;
        }
        // The successor never sends data back on this link: anything
        // readable is EOF or an error — eager failure detection the
        // threaded writer only got on its next write.
        if ev.readable() && !self.drain_out_readable(conn) {
            return false;
        }
        if ev.writable() && self.resume_write(conn).is_err() {
            return false;
        }
        true
    }

    /// Resumes the staged batch after write readiness, crediting the
    /// pipeline and clearing the retry strike each time the buffer
    /// fully drains (the TxDone-equivalent moment), then stages the
    /// next batch while the socket keeps accepting. Hot: alloc-free —
    /// staging happens in [`Lane::encode_next`].
    fn resume_write(&mut self, conn: &mut OutConn) -> io::Result<()> {
        loop {
            if conn.out.is_empty() && !self.encode_next(conn) {
                return Ok(());
            }
            let drained = match &mut conn.state {
                OutState::Ready(stream) => conn.out.flush(stream)?,
                _ => return Ok(()),
            };
            if !drained {
                return Ok(());
            }
            if conn.staged_at != 0 {
                hts_metrics::histogram!("hts_net_ring_write_nanos")
                    .record(hts_metrics::now_nanos().saturating_sub(conn.staged_at));
                conn.staged_at = 0;
            }
            self.retried.remove(&conn.peer);
            if self.active_out == Some(conn.peer) {
                self.in_channel = self.in_channel.saturating_sub(conn.unacked.len() as u32);
            }
            conn.unacked.clear();
        }
    }

    /// Stages the next coalesced batch into `conn.out` (one encoded
    /// batch at a time, hello bytes may precede the first). Honors the
    /// linger window exactly like the threaded writer: a partial batch
    /// waits up to `linger` for company, but one that fills ships at
    /// once. Returns `false` when nothing was staged.
    fn encode_next(&mut self, conn: &mut OutConn) -> bool {
        if !matches!(conn.state, OutState::Ready(_))
            || !conn.unacked.is_empty()
            || conn.pending.is_empty()
        {
            return false;
        }
        let max_frames = self.batching.max_frames.max(1);
        if !self.linger.is_zero() && conn.pending.len() < max_frames {
            let queued: usize = conn.pending.iter().map(codec::frame_wire_size).sum();
            if queued < self.batching.max_bytes {
                let now = Instant::now();
                match conn.linger_until {
                    None => {
                        conn.linger_until = Some(now + self.linger);
                        return false;
                    }
                    Some(deadline) if now < deadline => return false,
                    Some(_) => {}
                }
            }
        }
        conn.linger_until = None;
        let mut bytes = 0usize;
        drain_batch(
            &mut conn.pending,
            max_frames,
            self.batching.max_bytes,
            &mut bytes,
            &mut conn.unacked,
        );
        hts_metrics::histogram!("hts_net_ring_batch_frames").record(conn.unacked.len() as u64);
        hts_metrics::histogram!("hts_net_ring_batch_bytes").record(bytes as u64);
        encode_ring_frames(&conn.unacked, &mut self.scratch);
        conn.out.push(&self.scratch);
        conn.staged_at = hts_metrics::now_nanos();
        !conn.unacked.is_empty()
    }

    fn drain_out_readable(&mut self, conn: &mut OutConn) -> bool {
        let OutState::Ready(stream) = &mut conn.state else {
            return true;
        };
        let mut sink = [0u8; 512];
        loop {
            match read_nb(stream, &mut sink) {
                Ok(ReadStatus::Data(_)) => {}
                Ok(ReadStatus::WouldBlock) => return true,
                Ok(ReadStatus::Eof) | Err(_) => return false,
            }
        }
    }

    /// Begins (or retries) a nonblocking connect to `conn.peer`.
    /// Returns `false` only once every attempt is spent.
    fn start_connect(&mut self, conn: &mut OutConn) -> bool {
        if conn.attempts_left == 0 {
            return false;
        }
        conn.attempts_left -= 1;
        match connect_nonblocking(self.lc.addrs[conn.peer.index()]) {
            Ok((stream, done)) => {
                stream.set_nodelay(true).ok();
                if self
                    .poller
                    .register(stream.as_raw_fd(), Token(conn.token), Interest::BOTH)
                    .is_err()
                {
                    return self.connect_failed(conn);
                }
                self.slots.insert(conn.token, SlotKind::RingOut(conn.peer));
                if done {
                    // Connected synchronously (the localhost common
                    // case): stage the hello; the level-triggered
                    // EPOLLOUT flushes it on the next wait.
                    conn.state = OutState::Ready(stream);
                    self.push_hello(conn);
                } else {
                    conn.state = OutState::Connecting {
                        stream,
                        deadline: Instant::now() + CONNECT_TIMEOUT,
                    };
                }
                conn.writing = true;
                true
            }
            Err(_) => self.connect_failed(conn),
        }
    }

    /// One connect attempt failed: close its socket (if any) and — with
    /// attempts remaining — back off to `Waiting`. Returns `false` once
    /// attempts are exhausted.
    fn connect_failed(&mut self, conn: &mut OutConn) -> bool {
        if let OutState::Connecting { stream, .. } | OutState::Ready(stream) = &conn.state {
            self.poller.deregister(stream.as_raw_fd());
            self.slots.remove(&conn.token);
        }
        conn.writing = false;
        if conn.attempts_left == 0 {
            conn.state = OutState::Waiting {
                retry_at: Instant::now(),
            };
            return false;
        }
        conn.state = OutState::Waiting {
            retry_at: Instant::now() + CONNECT_BACKOFF,
        };
        true
    }

    /// A nonblocking connect completed: become `Ready` and stage the
    /// lane-tagged handshake. The first full drain of the buffer then
    /// clears any retry strike — the zero-frame-TxDone equivalent: the
    /// link is proven healthy by connect + handshake alone.
    fn finish_connect(&mut self, conn: &mut OutConn) {
        let placeholder = OutState::Waiting {
            retry_at: Instant::now(),
        };
        let OutState::Connecting { stream, .. } = std::mem::replace(&mut conn.state, placeholder)
        else {
            return;
        };
        conn.state = OutState::Ready(stream);
        self.push_hello(conn);
    }

    fn push_hello(&mut self, conn: &mut OutConn) {
        // Lane 0 keeps the legacy handshake (a single-lane cluster
        // speaks the pre-lane wire protocol bit for bit).
        let hello = if self.lc.lane == 0 {
            Hello::Server(self.lc.id)
        } else {
            Hello::ServerLane(self.lc.id, self.lc.lane)
        };
        conn.out.push(&hello.encode());
    }

    /// Keeps write interest armed only while the link has (or is about
    /// to learn whether it has) bytes to move.
    fn update_out_interest(&mut self, conn: &mut OutConn) {
        let (fd, want_write) = match &conn.state {
            OutState::Waiting { .. } => return,
            OutState::Connecting { stream, .. } => (stream.as_raw_fd(), true),
            OutState::Ready(stream) => (stream.as_raw_fd(), !conn.out.is_empty()),
        };
        if want_write != conn.writing {
            let interest = if want_write {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            self.poller.reregister(fd, Token(conn.token), interest).ok();
            conn.writing = want_write;
        }
    }

    fn new_out_conn(&mut self, peer: ServerId, attempts: u32) -> OutConn {
        let token = self.next_token;
        self.next_token += 1;
        OutConn {
            token,
            peer,
            state: OutState::Waiting {
                retry_at: Instant::now(),
            },
            pending: VecDeque::new(),
            unacked: Vec::new(),
            out: WriteBuf::new(),
            attempts_left: attempts,
            linger_until: None,
            writing: false,
            staged_at: 0,
        }
    }

    /// The strike logic, mirroring the threaded backend's
    /// `RingWriteFailed` handling: first failure retries every lost
    /// frame over one fresh connection; a second failure on that fresh
    /// connection is a crash verdict (the lost frames are covered by
    /// the splice-retransmission in `on_server_crashed`).
    fn fail_out(&mut self, mut conn: OutConn) {
        loop {
            self.drop_out_sockets(&conn);
            conn.state = OutState::Waiting {
                retry_at: Instant::now(),
            };
            let peer = conn.peer;
            let mut lost: VecDeque<RingFrame> = std::mem::take(&mut conn.unacked).into();
            lost.append(&mut conn.pending);
            if self.active_out == Some(peer) {
                self.in_channel = 0;
            }
            if self.retried.insert(peer) {
                let mut fresh = self.new_out_conn(peer, RETRY_ATTEMPTS);
                fresh.pending = lost;
                if self.active_out == Some(peer) {
                    self.in_channel = fresh.pending.len() as u32;
                }
                if self.start_connect(&mut fresh) {
                    self.update_out_interest(&mut fresh);
                    self.ring_outs.insert(peer, fresh);
                    return;
                }
                conn = fresh;
                continue;
            }
            self.retried.remove(&peer);
            note_crash_verdict(self.lc.id, self.lc.lane, peer);
            let acts = self.core.on_server_crashed(peer);
            self.actions.extend(acts);
            return;
        }
    }

    fn drop_out_sockets(&mut self, conn: &OutConn) {
        self.slots.remove(&conn.token);
        match &conn.state {
            OutState::Connecting { stream, .. } | OutState::Ready(stream) => {
                self.poller.deregister(stream.as_raw_fd());
            }
            OutState::Waiting { .. } => {}
        }
    }

    /// Keeps the outbound link tracking the core's successor: parked
    /// links are reactivated with their leftover frames counted against
    /// the pipeline, new successors get a fresh connection.
    fn ensure_ring_out(&mut self) {
        let successor = self.core.successor();
        if self.active_out == successor {
            return;
        }
        self.active_out = None;
        self.in_channel = 0;
        let Some(next) = successor else { return };
        if let Some(conn) = self.ring_outs.get(&next) {
            // Reactivating a parked link: frames from its previous
            // activation may still be queued; count them or the
            // pipeline pacing would over-fill.
            self.in_channel = (conn.pending.len() + conn.unacked.len()) as u32;
        } else {
            let mut conn = self.new_out_conn(next, CONNECT_ATTEMPTS);
            if self.start_connect(&mut conn) {
                self.ring_outs.insert(next, conn);
            } else {
                self.active_out = Some(next);
                self.fail_out(conn);
                return;
            }
        }
        self.active_out = Some(next);
    }

    /// Drains the core's batch scheduler into the active link and kicks
    /// a flush — the reactor twin of the threaded event loop's `pump`.
    fn pump(&mut self) {
        self.ensure_ring_out();
        let Some(active) = self.active_out else {
            return;
        };
        let Some(mut conn) = self.ring_outs.remove(&active) else {
            return;
        };
        while (self.in_channel as usize) < self.pipeline_cap {
            let room = self.pipeline_cap - self.in_channel as usize;
            let frames = self
                .core
                .drain_frames(room.min(self.batching.max_frames), self.batching.max_bytes);
            if frames.is_empty() {
                break;
            }
            self.in_channel += frames.len() as u32;
            conn.pending.extend(frames);
        }
        if self.resume_write(&mut conn).is_err() {
            self.fail_out(conn);
            return;
        }
        self.update_out_interest(&mut conn);
        self.ring_outs.insert(active, conn);
    }

    // ---- timers ------------------------------------------------------

    fn next_timeout(&self) -> Option<Duration> {
        let mut next: Option<Instant> = None;
        for conn in self.ring_outs.values() {
            let deadline = match &conn.state {
                OutState::Waiting { retry_at } => Some(*retry_at),
                OutState::Connecting { deadline, .. } => Some(*deadline),
                OutState::Ready(_) => conn.linger_until,
            };
            if let Some(deadline) = deadline {
                next = Some(next.map_or(deadline, |cur: Instant| cur.min(deadline)));
            }
        }
        next.map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }

    fn handle_timers(&mut self) {
        if self.ring_outs.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut due: Vec<(ServerId, Due)> = Vec::new();
        for (peer, conn) in &self.ring_outs {
            let fire = match &conn.state {
                OutState::Waiting { retry_at } if *retry_at <= now => Some(Due::Retry),
                OutState::Connecting { deadline, .. } if *deadline <= now => {
                    Some(Due::ConnectTimeout)
                }
                OutState::Ready(_) if conn.linger_until.is_some_and(|d| d <= now) => {
                    Some(Due::Linger)
                }
                _ => None,
            };
            if let Some(kind) = fire {
                due.push((*peer, kind));
            }
        }
        for (peer, kind) in due {
            let Some(mut conn) = self.ring_outs.remove(&peer) else {
                continue;
            };
            let healthy = match kind {
                Due::Retry => self.start_connect(&mut conn),
                Due::ConnectTimeout => self.connect_failed(&mut conn),
                Due::Linger => self.resume_write(&mut conn).is_ok(),
            };
            if healthy {
                self.update_out_interest(&mut conn);
                self.ring_outs.insert(peer, conn);
            } else {
                self.fail_out(conn);
            }
        }
    }

    // ---- injects -----------------------------------------------------

    fn drain_injects(&mut self) {
        while let Ok(inj) = self.injects.try_recv() {
            match inj {
                Inject::NewRing(s, stream) => self.add_ring_in(s, stream),
                Inject::NewClient(c, stream) => self.add_client(c, stream),
                Inject::ClientUp(c, home) => {
                    self.clients.insert(c, ClientRoute::Remote(home));
                }
                Inject::ClientDown(c) => {
                    if matches!(self.clients.get(&c), Some(ClientRoute::Remote(_))) {
                        self.clients.remove(&c);
                    }
                }
                Inject::FromClient(c, msg) => self.on_routed_request(c, msg),
                Inject::Reply(c, msg) => self.deliver_reply(c, msg),
            }
        }
    }

    fn add_client(&mut self, c: ClientId, stream: TcpStream) {
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(stream.as_raw_fd(), Token(token), Interest::READABLE)
            .is_err()
        {
            return;
        }
        self.slots.insert(token, SlotKind::Client);
        self.clients.insert(c, ClientRoute::Local(token));
        self.client_conns.insert(
            token,
            ClientConn {
                token,
                stream,
                id: c,
                reader: NbMessageReader::new(self.lc.config.zero_copy),
                out: WriteBuf::new(),
                writing: false,
            },
        );
        // Level-triggered: any requests already buffered in the socket
        // surface on the next wait.
    }

    fn add_ring_in(&mut self, s: ServerId, stream: TcpStream) {
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(stream.as_raw_fd(), Token(token), Interest::READABLE)
            .is_err()
        {
            return;
        }
        self.slots.insert(token, SlotKind::RingIn);
        self.ring_ins.insert(
            token,
            RingInConn {
                stream,
                from: s,
                reader: NbMessageReader::new(self.lc.config.zero_copy),
            },
        );
    }

    fn deliver_reply(&mut self, c: ClientId, msg: Message) {
        match self.clients.get(&c) {
            Some(&ClientRoute::Local(token)) => {
                let Some(conn) = self.client_conns.get_mut(&token) else {
                    return;
                };
                self.scratch.clear();
                frame_into(&mut self.scratch, &msg);
                conn.out.push(&self.scratch);
                self.dirty.push(token);
            }
            Some(&ClientRoute::Remote(home)) => {
                self.send_inject(usize::from(home), Inject::Reply(c, msg));
            }
            None => {}
        }
    }

    fn flush_actions(&mut self) {
        if self.actions.is_empty() {
            return;
        }
        let actions = std::mem::take(&mut self.actions);
        for action in actions {
            let (client, msg) = action_into_message(action);
            self.deliver_reply(client, msg);
        }
    }

    fn flush_dirty(&mut self) {
        while let Some(token) = self.dirty.pop() {
            let Some(mut conn) = self.client_conns.remove(&token) else {
                continue;
            };
            if self.flush_client(&mut conn).is_err() {
                self.client_down(token, conn);
                continue;
            }
            self.client_conns.insert(token, conn);
        }
    }

    fn send_inject(&self, lane: usize, inj: Inject) {
        let (tx, waker) = &self.peers[lane];
        if tx.send(inj).is_ok() {
            waker.wake();
        }
    }
}

// ---- acceptor --------------------------------------------------------

/// A freshly accepted connection still reading its hello bytes.
struct PendingConn {
    stream: TcpStream,
    buf: [u8; 5],
    filled: usize,
}

/// The shared acceptor: accepts, reads each connection's handshake
/// incrementally (never blocking on a slow or half-open peer), and
/// hands the socket to its lane.
struct Acceptor {
    listener: TcpListener,
    poller: Poller,
    waker: Arc<Waker>,
    peers: Vec<(Sender<Inject>, Arc<Waker>)>,
    shutdown: Arc<AtomicBool>,
    pending: HashMap<u64, PendingConn>,
    next_token: u64,
}

impl Acceptor {
    fn run(mut self) {
        let _tally = ThreadTally::new();
        let mut events = Events::with_capacity(64);
        loop {
            if self.poller.wait(&mut events, None).is_err() {
                return;
            }
            for ev in events.iter() {
                match ev.token().0 {
                    WAKER_TOKEN => self.waker.drain(),
                    LISTENER_TOKEN => {
                        if !self.accept_burst() {
                            return;
                        }
                    }
                    token => self.drive_hello(token),
                }
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
        }
    }

    fn accept_burst(&mut self) -> bool {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), Token(token), Interest::READABLE)
                        .is_err()
                    {
                        continue;
                    }
                    self.pending.insert(
                        token,
                        PendingConn {
                            stream,
                            buf: [0; 5],
                            filled: 0,
                        },
                    );
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                    ) =>
                {
                    return true;
                }
                Err(_) => return false,
            }
        }
    }

    /// Advances one pending handshake: hello bytes accumulate across
    /// any number of partial reads (first the role byte, then the 3- or
    /// 5-byte form it implies).
    fn drive_hello(&mut self, token: u64) {
        let Some(mut conn) = self.pending.remove(&token) else {
            return;
        };
        loop {
            let need = if conn.filled == 0 {
                1
            } else {
                match conn.buf[0] {
                    0x01 => 3,
                    0x02 | 0x03 => 5,
                    _ => {
                        // Unknown role: drop the connection.
                        self.poller.deregister(conn.stream.as_raw_fd());
                        return;
                    }
                }
            };
            if conn.filled >= need {
                self.poller.deregister(conn.stream.as_raw_fd());
                if let Ok(hello) = Hello::decode(&conn.buf[..need]) {
                    self.route(hello, conn.stream);
                }
                return;
            }
            match read_nb(&mut conn.stream, &mut conn.buf[conn.filled..need]) {
                Ok(ReadStatus::Data(n)) => conn.filled += n,
                Ok(ReadStatus::WouldBlock) => {
                    self.pending.insert(token, conn);
                    return;
                }
                Ok(ReadStatus::Eof) | Err(_) => {
                    self.poller.deregister(conn.stream.as_raw_fd());
                    return;
                }
            }
        }
    }

    fn route(&mut self, hello: Hello, stream: TcpStream) {
        match hello {
            // Legacy server handshake = lane 0, like the threaded path.
            Hello::Server(s) => self.send(0, Inject::NewRing(s, stream)),
            Hello::ServerLane(s, lane) => {
                if usize::from(lane) < self.peers.len() {
                    self.send(usize::from(lane), Inject::NewRing(s, stream));
                }
            }
            Hello::Client(c) => {
                let home = c.0 as usize % self.peers.len();
                // Reply routes first, socket last: every sibling lane
                // knows where client `c` lives before the home lane can
                // read (and forward) a single request, so a forwarded
                // request's reply always finds its way back.
                for lane in 0..self.peers.len() {
                    if lane != home {
                        self.send(lane, Inject::ClientUp(c, home as u16));
                    }
                }
                self.send(home, Inject::NewClient(c, stream));
            }
        }
    }

    fn send(&self, lane: usize, inj: Inject) {
        let (tx, waker) = &self.peers[lane];
        if tx.send(inj).is_ok() {
            waker.wake();
        }
    }
}
