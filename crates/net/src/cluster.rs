//! In-process cluster harness for tests and examples.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;

use hts_core::{Config, Durability};
use hts_types::ServerId;

use crate::server::{Server, ServerConfig};

/// A local cluster of `n` servers on ephemeral localhost ports.
///
/// [`launch`](Cluster::launch) gives the paper's crash-**stop** model: a
/// [`crash`](Cluster::crash)ed server is gone for good.
/// [`launch_durable`](Cluster::launch_durable) gives crash-**recovery**:
/// every server logs committed writes to a WAL directory, and
/// [`restart`](Cluster::restart) boots a crashed server back up from its
/// log — it rejoins the ring, resyncs and serves again. With
/// [`Config::lanes`](hts_core::Config) > 1 every server runs that many
/// parallel ring lanes; each lane logs into its own `lane-<k>`
/// subdirectory of the server's WAL directory and is recovered —
/// replayed, rejoined, resynced — independently on restart.
///
/// See the [crate docs](crate) for an example.
pub struct Cluster {
    servers: Vec<Option<Server>>,
    addrs: Vec<SocketAddr>,
    config: Config,
    wal_base: Option<PathBuf>,
}

impl Cluster {
    /// Boots `n` servers with the paper-faithful [`Config`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn launch(n: u16) -> io::Result<Cluster> {
        Cluster::launch_with(n, Config::default())
    }

    /// Boots `n` servers with an explicit protocol configuration.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn launch_with(n: u16, config: Config) -> io::Result<Cluster> {
        Cluster::launch_inner(n, config, None)
    }

    /// Boots `n` durable servers, each logging to
    /// `<wal_base>/server-<id>`. If the configured durability is not
    /// persistent it is upgraded to [`Durability::SyncAlways`] (a
    /// "durable cluster" with no persistence would be a contradiction).
    /// Pre-existing logs are recovered, so launching over a previous
    /// cluster's directory restores its data.
    ///
    /// # Errors
    ///
    /// Propagates bind and log-recovery failures.
    pub fn launch_durable(
        n: u16,
        mut config: Config,
        wal_base: impl Into<PathBuf>,
    ) -> io::Result<Cluster> {
        if !config.durability.is_persistent() {
            config.durability = Durability::SyncAlways;
        }
        Cluster::launch_inner(n, config, Some(wal_base.into()))
    }

    fn launch_inner(n: u16, config: Config, wal_base: Option<PathBuf>) -> io::Result<Cluster> {
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster needs at least one server",
            ));
        }
        // Reserve ephemeral ports first so every server knows the full map.
        let mut addrs = Vec::with_capacity(usize::from(n));
        {
            let mut holders = Vec::new();
            for _ in 0..n {
                let holder = TcpListener::bind("127.0.0.1:0")?;
                addrs.push(holder.local_addr()?);
                holders.push(holder);
            }
            // Holders drop here; the brief race with other processes is
            // acceptable for tests/examples.
        }
        let mut cluster = Cluster {
            servers: (0..n).map(|_| None).collect(),
            addrs,
            config,
            wal_base,
        };
        for i in 0..n {
            cluster.servers[usize::from(i)] = Some(cluster.spawn_one(ServerId(i))?);
        }
        Ok(cluster)
    }

    fn spawn_one(&self, id: ServerId) -> io::Result<Server> {
        Server::spawn(ServerConfig {
            id,
            addrs: self.addrs.clone(),
            config: self.config.clone(),
            wal_dir: self.wal_dir(id),
        })
    }

    /// The servers' addresses, indexed by [`ServerId`].
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.addrs.clone()
    }

    /// The WAL directory of server `s` (durable clusters only).
    pub fn wal_dir(&self, s: ServerId) -> Option<PathBuf> {
        self.wal_base
            .as_ref()
            .map(|base| base.join(format!("server-{}", s.0)))
    }

    /// Crashes one server (kills its event loop and every connection;
    /// its WAL directory, if any, survives for a [`restart`](Cluster::restart)).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] if `s` is out of range or already
    /// crashed.
    pub fn crash(&mut self, s: ServerId) -> io::Result<()> {
        match self.servers.get_mut(s.index()).and_then(Option::take) {
            Some(server) => {
                server.shutdown();
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{s} is not a running server of this cluster"),
            )),
        }
    }

    /// Restarts a crashed server of a durable cluster from its WAL
    /// directory: it replays snapshot + log tail, rebinds its address,
    /// announces its rejoin around the ring and resyncs before serving.
    ///
    /// # Errors
    ///
    /// Propagates rebind and log-recovery failures;
    /// [`io::ErrorKind::InvalidInput`] if the cluster is not durable, and
    /// [`io::ErrorKind::AlreadyExists`] if `s` is still running.
    pub fn restart(&mut self, s: ServerId) -> io::Result<()> {
        if self.wal_base.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "restart requires a durable cluster (launch_durable)",
            ));
        }
        if self.servers.get(s.index()).is_none_or(Option::is_some) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{s} is still running; crash it first"),
            ));
        }
        self.servers[s.index()] = Some(self.spawn_one(s)?);
        Ok(())
    }

    /// Fetches server `s`'s live metrics registry (Prometheus-style text
    /// exposition) over a throwaway [`Client`](crate::Client) connection.
    /// The caller's client id space is untouched: the probe uses the
    /// reserved id `u32::MAX`.
    ///
    /// # Errors
    ///
    /// Connect/timeout errors against that server — including when it is
    /// currently crashed.
    pub fn stats(&self, s: ServerId) -> io::Result<String> {
        let mut probe = crate::Client::connect_preferring(u32::MAX, self.addrs(), s)?;
        probe.stats(s)
    }

    /// Number of servers still running.
    pub fn alive(&self) -> usize {
        self.servers.iter().flatten().count()
    }

    /// Stops every remaining server.
    pub fn shutdown(mut self) {
        for server in self.servers.iter_mut() {
            if let Some(s) = server.take() {
                s.shutdown();
            }
        }
    }
}
