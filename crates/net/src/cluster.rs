//! In-process cluster harness for tests and examples.

use std::io;
use std::net::{SocketAddr, TcpListener};

use hts_core::Config;
use hts_types::ServerId;

use crate::server::{Server, ServerConfig};

/// A local cluster of `n` servers on ephemeral localhost ports.
///
/// See the [crate docs](crate) for an example.
pub struct Cluster {
    servers: Vec<Option<Server>>,
    addrs: Vec<SocketAddr>,
}

impl Cluster {
    /// Boots `n` servers with the paper-faithful [`Config`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn launch(n: u16) -> io::Result<Cluster> {
        Cluster::launch_with(n, Config::default())
    }

    /// Boots `n` servers with an explicit protocol configuration.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn launch_with(n: u16, config: Config) -> io::Result<Cluster> {
        assert!(n > 0, "a cluster needs at least one server");
        // Reserve ephemeral ports first so every server knows the full map.
        let mut addrs = Vec::with_capacity(usize::from(n));
        {
            let mut holders = Vec::new();
            for _ in 0..n {
                let holder = TcpListener::bind("127.0.0.1:0")?;
                addrs.push(holder.local_addr()?);
                holders.push(holder);
            }
            // Holders drop here; the brief race with other processes is
            // acceptable for tests/examples.
        }
        let mut servers = Vec::with_capacity(usize::from(n));
        for i in 0..n {
            servers.push(Some(Server::spawn(ServerConfig {
                id: ServerId(i),
                addrs: addrs.clone(),
                config: config.clone(),
            })?));
        }
        Ok(Cluster {
            servers,
            addrs,
        })
    }

    /// The servers' addresses, indexed by [`ServerId`].
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.addrs.clone()
    }

    /// Crashes one server (stops it for good).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or already crashed.
    pub fn crash(&mut self, s: ServerId) {
        self.servers[s.index()]
            .take()
            .expect("server alive")
            .shutdown();
    }

    /// Number of servers still running.
    pub fn alive(&self) -> usize {
        self.servers.iter().flatten().count()
    }

    /// Stops every remaining server.
    pub fn shutdown(mut self) {
        for server in self.servers.iter_mut() {
            if let Some(s) = server.take() {
                s.shutdown();
            }
        }
    }
}
