//! Length-prefixed message framing over TCP.

use std::io::{self, Read, Write};

use bytes::BytesMut;
use hts_types::{codec, Message};

/// Upper bound on a frame body (64 MiB): guards against corrupt length
/// prefixes allocating unbounded memory.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Writes one message: `u32` big-endian length, then the codec bytes.
///
/// # Errors
///
/// Propagates socket errors; the caller treats any error as a dead peer.
pub fn write_message<W: Write>(writer: &mut W, msg: &Message) -> io::Result<()> {
    let mut buf = BytesMut::with_capacity(4 + codec::wire_size(msg));
    buf.extend_from_slice(&(codec::wire_size(msg) as u32).to_be_bytes());
    codec::encode_into(msg, &mut buf);
    writer.write_all(&buf)?;
    writer.flush()
}

/// Reads one message framed by [`write_message`].
///
/// # Errors
///
/// `UnexpectedEof` on clean peer shutdown, `InvalidData` on oversized or
/// undecodable frames, otherwise the underlying socket error.
pub fn read_message<R: Read>(reader: &mut R) -> io::Result<Message> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    codec::decode(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_types::{ObjectId, RequestId, Value};

    #[test]
    fn roundtrip_over_a_buffer() {
        let msg = Message::WriteReq {
            object: ObjectId(1),
            request: RequestId(2),
            value: Value::filled(7, 10_000),
        };
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_message(&mut cursor).unwrap(), msg);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(&[0; 16]);
        let mut cursor = &buf[..];
        let err = read_message(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_reports_eof() {
        let msg = Message::ReadReq {
            object: ObjectId(0),
            request: RequestId(1),
        };
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = &buf[..];
        let err = read_message(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
