//! Length-prefixed message framing over TCP.
//!
//! Every wire message is a `u32` big-endian length followed by the codec
//! bytes. The write paths thread a reusable scratch [`BytesMut`] so the
//! hot loops (the coalescing ring writer, client-reply flushing, the
//! blocking client) never allocate a fresh buffer per message, and
//! [`write_ring_frames`] turns a whole frame batch into **one** buffer
//! fill, one `write_all`, one flush.

use std::io::{self, Read, Write};

use bytes::BytesMut;
use hts_poll::{read_nb, ReadStatus};
use hts_types::{codec, Message, RingFrame};

/// Upper bound on a frame body (64 MiB): guards against corrupt length
/// prefixes allocating unbounded memory.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Appends one length-prefixed message to `buf` without touching the
/// socket (compose several, then flush once).
pub fn frame_into(buf: &mut BytesMut, msg: &Message) {
    let size = codec::wire_size(msg);
    buf.reserve(4 + size);
    buf.extend_from_slice(&(size as u32).to_be_bytes());
    codec::encode_into(msg, buf);
}

/// Writes one message through a caller-owned scratch buffer (cleared
/// first), avoiding the per-call allocation of [`write_message`].
///
/// # Errors
///
/// Propagates socket errors; the caller treats any error as a dead peer.
pub fn write_message_with<W: Write>(
    writer: &mut W,
    msg: &Message,
    scratch: &mut BytesMut,
) -> io::Result<()> {
    scratch.clear();
    frame_into(scratch, msg);
    writer.write_all(scratch)?;
    writer.flush()
}

/// Writes one message: `u32` big-endian length, then the codec bytes.
/// Allocates a fresh buffer per call — prefer [`write_message_with`] on
/// hot paths.
///
/// # Errors
///
/// Propagates socket errors; the caller treats any error as a dead peer.
pub fn write_message<W: Write>(writer: &mut W, msg: &Message) -> io::Result<()> {
    let mut scratch = BytesMut::with_capacity(4 + codec::wire_size(msg));
    write_message_with(writer, msg, &mut scratch)
}

/// Writes a coalesced batch of ring frames as **one** wire message with
/// one flush: a lone frame travels as [`Message::Ring`], several as
/// [`Message::RingBatch`] (frames keep their order — the batch is the
/// FIFO link's contents). An empty batch writes nothing.
///
/// # Errors
///
/// Propagates socket errors; the caller treats any error as a dead peer
/// and owns re-sending `frames` elsewhere.
pub fn write_ring_frames<W: Write>(
    writer: &mut W,
    frames: &[RingFrame],
    scratch: &mut BytesMut,
) -> io::Result<()> {
    if frames.is_empty() {
        return Ok(());
    }
    encode_ring_frames(frames, scratch);
    writer.write_all(scratch)?;
    writer.flush()
}

/// The encode half of [`write_ring_frames`]: clears `scratch` and fills
/// it with the complete wire bytes (length prefix included) of the
/// batch. The reactor backend uses this to stage a batch into its
/// per-connection write buffer and let epoll writability drive the
/// actual sends. An empty batch encodes to nothing.
pub(crate) fn encode_ring_frames(frames: &[RingFrame], scratch: &mut BytesMut) {
    scratch.clear();
    if frames.is_empty() {
        return;
    }
    let body = if frames.len() == 1 {
        1 + codec::frame_wire_size(&frames[0])
    } else {
        3 + frames.iter().map(codec::frame_wire_size).sum::<usize>()
    };
    scratch.reserve(4 + body);
    scratch.extend_from_slice(&(body as u32).to_be_bytes());
    if frames.len() == 1 {
        codec::encode_ring_into(&frames[0], scratch);
    } else {
        codec::encode_ring_batch_into(frames, scratch);
    }
}

/// Reads one message framed by [`write_message`].
///
/// One-shot form of [`MessageReader`]; loops should hold a
/// `MessageReader` so value-free messages recycle their read buffer.
///
/// # Errors
///
/// `UnexpectedEof` on clean peer shutdown, `InvalidData` on oversized or
/// undecodable frames, otherwise the underlying socket error.
pub fn read_message<R: Read>(reader: &mut R) -> io::Result<Message> {
    MessageReader::new().read(reader)
}

/// The pre-zero-copy inbound path, kept verbatim as the
/// `Config::zero_copy = false` ablation baseline: a fresh allocation
/// per message and a copying decode (one more allocation + copy per
/// contained value). Benchmarked against [`MessageReader`] by fig1.
///
/// # Errors
///
/// `UnexpectedEof` on clean peer shutdown, `InvalidData` on oversized or
/// undecodable frames, otherwise the underlying socket error.
pub fn read_message_copied<R: Read>(reader: &mut R) -> io::Result<Message> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    codec::decode(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// The zero-copy inbound path: reads each length-prefixed message into a
/// single [`Bytes`] allocation and decodes it with
/// [`codec::decode_shared`], so every contained [`Value`] is a
/// refcounted **view** of the receive buffer — no per-value copy.
///
/// The reader keeps one spare buffer: when a decoded message carries no
/// value views (acks, read requests, tag-only ring notices — the
/// majority of wire traffic), the buffer's refcount drops back to one
/// and it is reclaimed for the next read, mirroring the write side's
/// scratch framing. Value-bearing messages keep their buffer alive for
/// exactly as long as the values do.
///
/// [`Value`]: hts_types::Value
#[derive(Default)]
pub struct MessageReader {
    spare: BytesMut,
}

impl MessageReader {
    /// An empty reader (no buffer until the first read needs one).
    pub fn new() -> MessageReader {
        MessageReader::default()
    }

    /// Reads one message framed by [`write_message`].
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` on clean peer shutdown, `InvalidData` on
    /// oversized or undecodable frames, otherwise the underlying socket
    /// error.
    pub fn read<R: Read>(&mut self, reader: &mut R) -> io::Result<Message> {
        let mut len_bytes = [0u8; 4];
        reader.read_exact(&mut len_bytes)?;
        let len = u32::from_be_bytes(len_bytes) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
            ));
        }
        let mut body = std::mem::take(&mut self.spare);
        body.clear();
        body.resize(len, 0);
        reader.read_exact(&mut body)?;
        let bytes = body.freeze();
        let msg =
            codec::decode_shared(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
        // No value view took a reference (or the decode failed): take
        // the allocation back for the next message.
        if let Ok(reclaimed) = bytes.try_into_mut() {
            self.spare = reclaimed;
        }
        msg
    }
}

/// Result of one [`NbMessageReader::poll`].
#[derive(Debug)]
pub enum MessagePoll {
    /// A complete decoded message.
    Msg(Message),
    /// Mid-frame or nothing buffered; wait for readability.
    Pending,
    /// Clean EOF on a frame boundary.
    Closed,
}

/// Nonblocking twin of [`MessageReader`] for the reactor backend: the
/// same zero-copy decode and spare-buffer recycling, but assembled
/// across any number of partial reads instead of `read_exact`. Call
/// [`poll`] in a loop on each readability report until it returns
/// `Pending`.
///
/// With `zero_copy` false it decodes through the copying
/// [`codec::decode`] instead, as the ablation baseline.
///
/// [`poll`]: NbMessageReader::poll
pub struct NbMessageReader {
    header: [u8; 4],
    filled: usize,
    body: BytesMut,
    in_body: bool,
    zero_copy: bool,
}

impl NbMessageReader {
    /// An empty reader; `zero_copy` picks the decode path.
    pub fn new(zero_copy: bool) -> NbMessageReader {
        NbMessageReader {
            header: [0; 4],
            filled: 0,
            body: BytesMut::new(),
            in_body: false,
            zero_copy,
        }
    }

    /// Pulls bytes until a message completes, the socket would block,
    /// or it cleanly closes. Each `Msg` may be followed by more — drain
    /// the readiness burst by looping until `Pending`.
    ///
    /// # Errors
    ///
    /// `InvalidData` on oversized or undecodable frames,
    /// `UnexpectedEof` on a mid-frame close, otherwise the socket
    /// error (`Interrupted` is retried internally).
    pub fn poll<R: Read>(&mut self, reader: &mut R) -> io::Result<MessagePoll> {
        loop {
            if !self.in_body {
                let n = match read_nb(reader, &mut self.header[self.filled..])? {
                    ReadStatus::Data(n) => n,
                    ReadStatus::WouldBlock => return Ok(MessagePoll::Pending),
                    ReadStatus::Eof => {
                        if self.filled == 0 {
                            return Ok(MessagePoll::Closed);
                        }
                        return Err(io::ErrorKind::UnexpectedEof.into());
                    }
                };
                self.filled += n;
                if self.filled < 4 {
                    continue;
                }
                let len = u32::from_be_bytes(self.header) as usize;
                if len > MAX_FRAME_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
                    ));
                }
                self.body.clear();
                self.body.resize(len, 0);
                self.filled = 0;
                self.in_body = true;
                continue;
            }
            if self.filled < self.body.len() {
                let n = match read_nb(reader, &mut self.body[self.filled..])? {
                    ReadStatus::Data(n) => n,
                    ReadStatus::WouldBlock => return Ok(MessagePoll::Pending),
                    ReadStatus::Eof => return Err(io::ErrorKind::UnexpectedEof.into()),
                };
                self.filled += n;
                if self.filled < self.body.len() {
                    continue;
                }
            }
            self.in_body = false;
            self.filled = 0;
            let msg = if self.zero_copy {
                let bytes = std::mem::take(&mut self.body).freeze();
                let msg = codec::decode_shared(&bytes)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
                // Value-free message (or failed decode): reclaim the
                // allocation for the next frame, like MessageReader.
                if let Ok(reclaimed) = bytes.try_into_mut() {
                    self.body = reclaimed;
                }
                msg?
            } else {
                codec::decode(&self.body)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            };
            return Ok(MessagePoll::Msg(msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hts_types::{ObjectId, RequestId, ServerId, Tag, Value};

    #[test]
    fn roundtrip_over_a_buffer() {
        let msg = Message::WriteReq {
            object: ObjectId(1),
            request: RequestId(2),
            value: Value::filled(7, 10_000),
        };
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_message(&mut cursor).unwrap(), msg);
    }

    #[test]
    fn scratch_writer_matches_allocating_writer() {
        let msg = Message::ReadReq {
            object: ObjectId(4),
            request: RequestId(9),
        };
        let mut scratch = BytesMut::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_message(&mut a, &msg).unwrap();
        write_message_with(&mut b, &msg, &mut scratch).unwrap();
        // Re-use immediately: the scratch must be self-cleaning.
        let mut c = Vec::new();
        write_message_with(&mut c, &msg, &mut scratch).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn ring_batch_framing_roundtrips_both_arities() {
        let tag = Tag::new(3, ServerId(1));
        let mut scratch = BytesMut::new();

        // One frame: travels as a plain Ring message.
        let single = [RingFrame::write(ObjectId(1), tag)];
        let mut buf = Vec::new();
        write_ring_frames(&mut buf, &single, &mut scratch).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(
            read_message(&mut cursor).unwrap(),
            Message::Ring(single[0].clone())
        );

        // Several frames: one RingBatch wire message, order preserved.
        let many = vec![
            RingFrame::pre_write(ObjectId(1), tag, Value::filled(1, 100)),
            RingFrame::write(ObjectId(2), tag),
            RingFrame::write(ObjectId(3), tag),
        ];
        let mut buf = Vec::new();
        write_ring_frames(&mut buf, &many, &mut scratch).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_message(&mut cursor).unwrap(), Message::RingBatch(many));

        // Empty batch: nothing on the wire.
        let mut buf = Vec::new();
        write_ring_frames(&mut buf, &[], &mut scratch).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn reader_hands_out_views_and_recycles_value_free_buffers() {
        let with_value = Message::WriteReq {
            object: ObjectId(1),
            request: RequestId(2),
            value: Value::filled(9, 4096),
        };
        let value_free = Message::WriteAck {
            object: ObjectId(1),
            request: RequestId(2),
        };
        let mut buf = Vec::new();
        write_message(&mut buf, &with_value).unwrap();
        write_message(&mut buf, &value_free).unwrap();
        write_message(&mut buf, &value_free).unwrap();

        let mut reader = MessageReader::new();
        let mut cursor = &buf[..];
        let decoded = reader.read(&mut cursor).unwrap();
        match &decoded {
            Message::WriteReq { value, .. } => assert_eq!(value.len(), 4096),
            other => panic!("wrong message: {other}"),
        }
        // The value pinned its buffer: the reader had to give it up.
        assert_eq!(reader.spare.len(), 0);

        assert_eq!(reader.read(&mut cursor).unwrap(), value_free);
        // A value-free message returns its buffer to the reader...
        let recycled = reader.spare.as_ptr();
        assert!(!reader.spare.is_empty() || reader.spare.capacity() > 0);
        assert_eq!(reader.read(&mut cursor).unwrap(), value_free);
        // ...and the next read reuses that same allocation.
        assert_eq!(reader.spare.as_ptr(), recycled);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(&[0; 16]);
        let mut cursor = &buf[..];
        let err = read_message(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_reports_eof() {
        let msg = Message::ReadReq {
            object: ObjectId(0),
            request: RequestId(1),
        };
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = &buf[..];
        let err = read_message(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
