//! A pipelined TCP client session: many operations in flight on one
//! socket.
//!
//! [`Session`] is the transport for [`SessionCore`]: a **window** of
//! concurrent operations multiplexed over one connection per server.
//! Replies from every connection pump into one event channel, so
//! completions are matched asynchronously and out of order. On Linux a
//! **single poller thread** owns every connection's read half (epoll
//! readiness via `hts-poll` — one thread per session, however many
//! servers it talks to); elsewhere — or with `HTS_REACTOR=0` — the
//! fallback spawns one reader thread per connection. The writer half
//! runs on the caller thread either way and **coalesces** back-to-back
//! requests into one buffered write + one flush per burst (a pipeline
//! fill of 64 small requests costs one syscall, not 64). Every request
//! keeps its own deadline and retry budget, reusing the stall-fix
//! machinery of the sequential [`Client`](crate::Client): a bounded
//! `connect_timeout`, per-attempt deadlines that stale traffic cannot
//! extend, and rotation to the next server believed alive.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use hts_core::SessionCore;
use hts_poll::{Events, Interest, Poller, Token, Waker};
use hts_types::{codec::Hello, ClientId, Message, ObjectId, RequestId, ServerId, Value};

use crate::client::{validate_addrs, RETRY_CYCLES};
use crate::framing::{frame_into, MessagePoll, MessageReader, NbMessageReader};
use std::sync::Arc;

/// Coalesced requests flush once this many buffered bytes accumulate
/// (bounds the scratch buffers under a pipeline of large writes).
const SEND_FLUSH_BYTES: usize = 256 * 1024;

enum SessionEvent {
    /// A reply arrived on some connection.
    Reply(Message),
    /// The reader for `server` (connection generation `gen`) died: the
    /// connection is gone. Stale generations are ignored — the session
    /// may long since have reconnected.
    Disconnected(ServerId, u64),
}

/// Where the read halves of a session's connections are pumped from.
enum ReaderBackend {
    /// One shared epoll poller thread owns every read half (Linux): the
    /// session costs one thread total, however many servers it talks to.
    Hub(ReaderHub),
    /// One blocking reader thread per connection (non-Linux hosts, or
    /// `HTS_REACTOR=0`).
    Threads,
}

struct ReaderHub {
    ctl: Sender<HubCtl>,
    waker: Arc<Waker>,
    handle: Option<JoinHandle<()>>,
}

enum HubCtl {
    /// Adopt the read half of a fresh connection to `server` at
    /// connection generation `gen`.
    Add(ServerId, u64, TcpStream),
    Exit,
}

impl ReaderBackend {
    /// Picks the backend: a shared poller thread where `hts-poll` is
    /// available (and not disabled via `HTS_REACTOR=0`), else falling
    /// back to per-connection reader threads. The poller thread spawns
    /// eagerly — it is the session's only helper thread and parks in
    /// `epoll_wait` until woken.
    fn new(events: Sender<SessionEvent>) -> ReaderBackend {
        if !crate::server::readiness_enabled() {
            return ReaderBackend::Threads;
        }
        let Ok(poller) = Poller::new() else {
            return ReaderBackend::Threads;
        };
        let Ok(waker) = Waker::new(&poller, Token(0)) else {
            return ReaderBackend::Threads;
        };
        let waker = Arc::new(waker);
        let (ctl_tx, ctl_rx) = unbounded();
        let hub_waker = Arc::clone(&waker);
        let handle = std::thread::spawn(move || hub_loop(poller, hub_waker, ctl_rx, events));
        ReaderBackend::Hub(ReaderHub {
            ctl: ctl_tx,
            waker,
            handle: Some(handle),
        })
    }
}

/// The session's shared reader: one epoll loop pumping every
/// connection's replies into the event channel. Token 0 is the waker
/// (control-channel doorbell); each adopted connection gets the next
/// monotone token. A connection that reads EOF or an error is dropped
/// with a [`SessionEvent::Disconnected`] carrying its generation, so
/// the session can tell a live connection's death from a stale one's.
fn hub_loop(
    poller: Poller,
    waker: Arc<Waker>,
    ctl: Receiver<HubCtl>,
    events: Sender<SessionEvent>,
) {
    struct HubConn {
        stream: TcpStream,
        server: ServerId,
        gen: u64,
        reader: NbMessageReader,
    }
    let mut conns: HashMap<u64, HubConn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut ready = Events::with_capacity(16);
    loop {
        if poller.wait(&mut ready, None).is_err() {
            return;
        }
        for ev in ready.iter() {
            let token = ev.token().0;
            if token == 0 {
                waker.drain();
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let dead = loop {
                match conn.reader.poll(&mut conn.stream) {
                    Ok(MessagePoll::Msg(msg)) => {
                        if events.send(SessionEvent::Reply(msg)).is_err() {
                            return; // session gone
                        }
                    }
                    Ok(MessagePoll::Pending) => break false,
                    Ok(MessagePoll::Closed) | Err(_) => break true,
                }
            };
            if dead {
                if let Some(conn) = conns.remove(&token) {
                    poller.deregister(conn.stream.as_raw_fd());
                    let _ = events.send(SessionEvent::Disconnected(conn.server, conn.gen));
                }
            }
        }
        loop {
            match ctl.try_recv() {
                Ok(HubCtl::Add(server, gen, stream)) => {
                    let token = next_token;
                    next_token += 1;
                    if poller
                        .register(stream.as_raw_fd(), Token(token), Interest::READABLE)
                        .is_err()
                    {
                        let _ = events.send(SessionEvent::Disconnected(server, gen));
                        continue;
                    }
                    conns.insert(
                        token,
                        HubConn {
                            stream,
                            server,
                            gen,
                            reader: NbMessageReader::new(true),
                        },
                    );
                }
                Ok(HubCtl::Exit) | Err(TryRecvError::Disconnected) => return,
                Err(TryRecvError::Empty) => break,
            }
        }
    }
}

struct Conn {
    stream: TcpStream,
    /// Encoded-but-unflushed requests (the coalescing writer's buffer).
    outbuf: BytesMut,
    /// Requests encoded in `outbuf`: their retry deadlines arm when the
    /// buffer actually hits the wire, not when they were encoded — a
    /// caller that sits between `begin_*` and `wait` must not make its
    /// own requests look timed out.
    buffered: Vec<RequestId>,
    /// Reader-thread generation, to ignore stale disconnect events.
    gen: u64,
}

/// A pipelined client of a TCP `hts` cluster: up to `window` operations
/// in flight concurrently over one session.
///
/// Operations start with [`begin_write`](Session::begin_write) /
/// [`begin_read`](Session::begin_read) (non-blocking while the window
/// has room, otherwise driving the pipeline until a slot frees) and
/// finish with [`wait`](Session::wait), in any order. Replies complete
/// whichever request they name — the server is free to answer
/// interleaved outstanding requests in any order.
///
/// # Examples
///
/// ```no_run
/// use hts_net::Session;
/// use hts_types::Value;
///
/// # fn main() -> std::io::Result<()> {
/// # let addrs = vec!["127.0.0.1:4000".parse().unwrap()];
/// let mut session = Session::connect(7, addrs, 8)?;
/// let puts: Vec<_> = (0..8)
///     .map(|i| session.begin_write(Value::from_u64(i)))
///     .collect::<Result<_, _>>()?;
/// for put in puts {
///     session.wait(put)?; // completions may arrive out of order
/// }
/// # Ok(())
/// # }
/// ```
pub struct Session {
    core: SessionCore,
    addrs: Vec<SocketAddr>,
    conns: Vec<Option<Conn>>,
    /// Monotone connection-generation counter per server.
    gens: Vec<u64>,
    id: ClientId,
    timeout: Duration,
    events_tx: Sender<SessionEvent>,
    events_rx: Receiver<SessionEvent>,
    /// Per-request retry deadline (armed when the request is flushed).
    deadlines: HashMap<RequestId, Instant>,
    /// Finished operations awaiting their `wait` call.
    completed: HashMap<RequestId, io::Result<Option<Value>>>,
    /// Who pumps replies off the sockets.
    reader: ReaderBackend,
}

impl Session {
    /// Connects lazily to a cluster at `addrs` (indexed by [`ServerId`]),
    /// admitting up to `window` concurrent operations.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] if `addrs` is empty or
    /// `window` is zero. Connections themselves are opened on first use.
    pub fn connect(id: u32, addrs: Vec<SocketAddr>, window: usize) -> io::Result<Session> {
        Session::connect_preferring(id, addrs, ServerId(0), window)
    }

    /// Connects lazily, preferring `preferred` as the first server to
    /// contact (pins load, and lets tests observe one specific server).
    ///
    /// # Errors
    ///
    /// As [`Session::connect`], plus [`io::ErrorKind::InvalidInput`] if
    /// `preferred` is outside the address map.
    pub fn connect_preferring(
        id: u32,
        addrs: Vec<SocketAddr>,
        preferred: ServerId,
        window: usize,
    ) -> io::Result<Session> {
        validate_addrs(&addrs, preferred)?;
        if window == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a session window must admit at least one operation",
            ));
        }
        let n = addrs.len() as u16;
        let id = ClientId(id);
        let (events_tx, events_rx) = unbounded();
        let reader = ReaderBackend::new(events_tx.clone());
        Ok(Session {
            core: SessionCore::new(id, ObjectId::SINGLE, n, preferred, window),
            conns: (0..n).map(|_| None).collect(),
            gens: vec![0; usize::from(n)],
            addrs,
            id,
            timeout: Duration::from_millis(500),
            events_tx,
            events_rx,
            deadlines: HashMap::new(),
            completed: HashMap::new(),
            reader,
        })
    }

    /// Sets the per-attempt reply timeout (default 500 ms).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The session's pipeline window.
    pub fn window(&self) -> usize {
        self.core.window()
    }

    /// Operations currently in flight (begun, not yet completed).
    pub fn in_flight(&self) -> usize {
        self.core.in_flight()
    }

    /// The alive-map the session routes by (test/diagnostic hook): entry
    /// `s` is `false` while server `s` is suspected crashed. Suspicions
    /// recover on successful reconnects and periodic re-probes.
    pub fn believed_alive(&self) -> &[bool] {
        self.core.believed_alive()
    }

    /// Starts a write of the register; returns a handle for
    /// [`wait`](Session::wait). Blocks only while the window is full.
    ///
    /// # Errors
    ///
    /// Fails when every server is unreachable for a full retry cycle
    /// while the session drains a slot.
    pub fn begin_write(&mut self, value: Value) -> io::Result<RequestId> {
        self.begin_write_to(ObjectId::SINGLE, value)
    }

    /// Starts a write of register `object` (multi-register stores).
    ///
    /// # Errors
    ///
    /// As [`Session::begin_write`].
    pub fn begin_write_to(&mut self, object: ObjectId, value: Value) -> io::Result<RequestId> {
        self.admit()?;
        let (request, server, msg) = self.core.begin_write_to(object, value);
        self.dispatch(request, server, &msg)?;
        Ok(request)
    }

    /// Starts a read of the register; returns a handle for
    /// [`wait`](Session::wait).
    ///
    /// # Errors
    ///
    /// As [`Session::begin_write`].
    pub fn begin_read(&mut self) -> io::Result<RequestId> {
        self.begin_read_from(ObjectId::SINGLE)
    }

    /// Starts a read of register `object`.
    ///
    /// # Errors
    ///
    /// As [`Session::begin_write`].
    pub fn begin_read_from(&mut self, object: ObjectId) -> io::Result<RequestId> {
        self.admit()?;
        let (request, server, msg) = self.core.begin_read_from(object);
        self.dispatch(request, server, &msg)?;
        Ok(request)
    }

    /// Blocks until `request` completes; returns `None` for writes and
    /// the value for reads. Handles may be waited in any order —
    /// completions are matched by request id, not arrival order.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::TimedOut`] if the request exhausted its retry
    /// cycle; [`io::ErrorKind::NotFound`] for a handle this session never
    /// issued (or already waited).
    pub fn wait(&mut self, request: RequestId) -> io::Result<Option<Value>> {
        while !self.completed.contains_key(&request) {
            if !self.core.is_inflight(request) {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("{request} is not an outstanding operation of this session"),
                ));
            }
            self.pump()?;
        }
        match self.completed.remove(&request) {
            Some(result) => result,
            None => Err(io::Error::other("completion vanished before wait")),
        }
    }

    /// Convenience: writes `value`, blocking until acknowledged (a
    /// one-op pipeline; the sequential [`Client`](crate::Client) API).
    ///
    /// # Errors
    ///
    /// As [`Session::wait`].
    pub fn write(&mut self, value: Value) -> io::Result<()> {
        let request = self.begin_write(value)?;
        self.wait(request).map(|_| ())
    }

    /// Convenience: reads the register, blocking until a server answers.
    ///
    /// # Errors
    ///
    /// As [`Session::wait`].
    pub fn read(&mut self) -> io::Result<Value> {
        let request = self.begin_read()?;
        self.wait(request)
            .and_then(crate::client::require_read_value)
    }

    /// Waits for every outstanding operation, returning the first error
    /// (after draining the rest).
    ///
    /// # Errors
    ///
    /// As [`Session::wait`].
    pub fn drain(&mut self) -> io::Result<()> {
        // Both the still-in-flight requests and the ones that already
        // finished (or exhausted their retries) without being waited —
        // their results/errors must not be silently dropped or leak.
        let outstanding: Vec<RequestId> = self
            .core
            .inflight_requests()
            .chain(self.completed.keys().copied())
            .collect();
        let mut first_err = None;
        for request in outstanding {
            if let Err(e) = self.wait(request) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Makes room for one more operation, driving the pipeline while the
    /// window is full.
    fn admit(&mut self) -> io::Result<()> {
        while !self.core.has_capacity() {
            self.pump()?;
        }
        Ok(())
    }

    /// Routes `msg` for `request` towards `server`: ensures a connection
    /// (reporting a successful reconnect as `server` being up) and
    /// encodes into its coalescing buffer. On connection failure the
    /// request — and everything else stranded on that server — is
    /// rerouted immediately.
    fn dispatch(&mut self, request: RequestId, server: ServerId, msg: &Message) -> io::Result<()> {
        // A conservative deadline in case the flush is deferred past the
        // next pump; flushing re-arms it at actual wire time.
        self.deadlines
            .insert(request, Instant::now() + self.timeout);
        match self.ensure_connection(server) {
            Ok(()) => {
                let Some(conn) = self.conns[server.index()].as_mut() else {
                    return self.fail_server(server);
                };
                frame_into(&mut conn.outbuf, msg);
                conn.buffered.push(request);
                if conn.outbuf.len() >= SEND_FLUSH_BYTES {
                    self.flush_server(server)?;
                }
                Ok(())
            }
            Err(_) => self.fail_server(server),
        }
    }

    /// Writes out the coalescing buffer of `server` in one syscall, and
    /// arms the flushed requests' retry deadlines from this instant (the
    /// moment they are actually on the wire).
    fn flush_server(&mut self, server: ServerId) -> io::Result<()> {
        let timeout = self.timeout;
        let Some(conn) = self.conns[server.index()].as_mut() else {
            return Ok(());
        };
        if conn.outbuf.is_empty() {
            return Ok(());
        }
        let (result, flushed) = {
            let Conn {
                stream,
                outbuf,
                buffered,
                ..
            } = conn;
            hts_types::sync::blocking_syscall("session coalesced send");
            let result = write_all_waiting(stream, outbuf, timeout);
            outbuf.clear();
            (result, std::mem::take(buffered))
        };
        match result {
            Ok(()) => {
                let deadline = Instant::now() + self.timeout;
                for request in flushed {
                    // Still on this server and unanswered? A completed
                    // request has no deadline to arm; a rerouted one is
                    // owned by its new server's flush.
                    if self.core.server_of(request) == Some(server) {
                        self.deadlines.insert(request, deadline);
                    }
                }
                Ok(())
            }
            // The stranded requests reroute through the failure path.
            Err(_) => self.fail_server(server),
        }
    }

    /// Flushes every dirty connection.
    fn flush_all(&mut self) -> io::Result<()> {
        for i in 0..self.conns.len() {
            self.flush_server(ServerId(i as u16))?;
        }
        Ok(())
    }

    /// One pipeline turn: flush buffered requests, then block for the
    /// next event (reply or disconnect) or the earliest retry deadline,
    /// whichever comes first.
    fn pump(&mut self) -> io::Result<()> {
        self.flush_all()?;
        let now = Instant::now();
        let next_deadline = self.deadlines.values().min().copied();
        let budget = match next_deadline {
            Some(at) => at.saturating_duration_since(now),
            // Nothing in flight: nothing can wake us — the callers
            // (admit/wait) re-check their predicates before pumping.
            None => return Ok(()),
        };
        match self.events_rx.recv_timeout(budget) {
            Ok(event) => self.absorb(event)?,
            Err(RecvTimeoutError::Timeout) => {}
            // The session holds its own event sender, so this cannot
            // fire; report it rather than panic the caller thread.
            Err(RecvTimeoutError::Disconnected) => {
                return Err(io::Error::other("session event channel closed"))
            }
        }
        // Drain whatever else already arrived — a burst of replies is
        // absorbed in one turn.
        while let Ok(event) = self.events_rx.try_recv() {
            self.absorb(event)?;
        }
        self.fire_expired()?;
        self.flush_all()
    }

    fn absorb(&mut self, event: SessionEvent) -> io::Result<()> {
        match event {
            SessionEvent::Reply(msg) => {
                if let Some(done) = self.core.on_reply(&msg) {
                    self.deadlines.remove(&done.request);
                    self.completed.insert(done.request, Ok(done.value));
                }
                Ok(())
            }
            SessionEvent::Disconnected(server, gen) => {
                if self.gens[server.index()] == gen {
                    self.fail_server(server)?;
                }
                Ok(())
            }
        }
    }

    /// Re-issues every request whose deadline passed, each to its next
    /// server (independently — one slow request never stalls the rest of
    /// the window).
    fn fire_expired(&mut self) -> io::Result<()> {
        let now = Instant::now();
        let expired: Vec<RequestId> = self
            .deadlines
            .iter()
            .filter(|(_, at)| **at <= now)
            .map(|(r, _)| *r)
            .collect();
        for request in expired {
            // Only THIS request rotates: the connection stays up — other
            // requests' replies are still in flight on it, and a late
            // reply to the rotated request remains a valid completion
            // (same request id; the paper's retry rule). A genuinely
            // dead connection is the reader thread's disconnect event,
            // which reroutes everything at once.
            match self.core.on_timeout(request) {
                Some((server, msg)) => self.retry(request, server, &msg)?,
                None => {
                    self.deadlines.remove(&request);
                }
            }
        }
        Ok(())
    }

    /// The connection to `server` failed: tear it down, mark the server
    /// suspect, and re-dispatch every request stranded on it.
    fn fail_server(&mut self, server: ServerId) -> io::Result<()> {
        self.teardown(server);
        for (request, next, msg) in self.core.on_server_down(server) {
            // A nested failure while re-dispatching an earlier entry of
            // this very loop may already have rerouted (or aborted) this
            // request; re-sending the stale snapshot would target a
            // server known dead and pay a blocking connect for it.
            if self.core.server_of(request) != Some(next) {
                continue;
            }
            self.retry(request, next, &msg)?;
        }
        Ok(())
    }

    /// One rerouted attempt of `request`, under the retry budget of a
    /// full cycle around the ring (the sequential client's
    /// `max_attempts`; counted by the core — see
    /// [`SessionCore::attempts_of`]). Over budget, the operation is
    /// abandoned and its `wait` reports `TimedOut`.
    fn retry(&mut self, request: RequestId, server: ServerId, msg: &Message) -> io::Result<()> {
        // `attempts` counts re-sends, so this bounds total sends at
        // `addrs.len() * RETRY_CYCLES` — the sequential Client's budget.
        let attempts = self.core.attempts_of(request).unwrap_or(0);
        if (attempts as usize) >= self.addrs.len() * RETRY_CYCLES {
            self.core.abort(request);
            self.deadlines.remove(&request);
            self.completed.insert(
                request,
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no server answered after a full retry cycle",
                )),
            );
            return Ok(());
        }
        self.dispatch(request, server, msg)
    }

    /// Closes the connection to `server` (both halves; the reader thread
    /// unblocks with an error and exits as a stale generation).
    fn teardown(&mut self, server: ServerId) {
        if let Some(conn) = self.conns[server.index()].take() {
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.gens[server.index()] = conn.gen + 1;
        }
    }

    /// (Re)opens the connection to `server`, bounded by the per-attempt
    /// timeout (a SYN-blackholed server costs one attempt, not the OS
    /// connect timeout), and hands the read half to the shared poller
    /// thread (or spawns a dedicated reader thread on the fallback
    /// backend). Success clears any suspicion against `server` — this is
    /// how a restarted server re-earns its place in the routing map.
    fn ensure_connection(&mut self, server: ServerId) -> io::Result<()> {
        if self.conns[server.index()].is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect_timeout(&self.addrs[server.index()], self.timeout)?;
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone()?;
        writer.write_all(&Hello::Client(self.id).encode())?;
        let gen = self.gens[server.index()];
        let reader = stream.try_clone()?;
        match &self.reader {
            ReaderBackend::Hub(hub) => {
                // O_NONBLOCK lives on the shared file description, so
                // this also makes the writer clone nonblocking —
                // `flush_server` waits out WouldBlock explicitly.
                reader.set_nonblocking(true)?;
                if hub.ctl.send(HubCtl::Add(server, gen, reader)).is_err() {
                    return Err(io::Error::other("session poller thread gone"));
                }
                hub.waker.wake();
            }
            ReaderBackend::Threads => {
                let events = self.events_tx.clone();
                std::thread::spawn(move || reader_loop(reader, server, gen, events));
            }
        }
        self.conns[server.index()] = Some(Conn {
            stream: writer,
            outbuf: BytesMut::new(),
            buffered: Vec::new(),
            gen,
        });
        self.core.on_server_up(server);
        Ok(())
    }
}

/// `write_all` over a possibly-nonblocking socket: parks in
/// [`hts_poll::wait_fd`] on `WouldBlock` instead of spinning, bounded by
/// `timeout` per stall. On the blocking fallback backend the socket
/// never reports `WouldBlock` and this is a plain `write_all`.
fn write_all_waiting(stream: &mut TcpStream, mut buf: &[u8], timeout: Duration) -> io::Result<()> {
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !hts_poll::wait_fd(stream.as_raw_fd(), Interest::WRITABLE, Some(timeout))? {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "session send stalled past the reply timeout",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

impl Drop for Session {
    fn drop(&mut self) {
        // Unblock and retire every reader (threads exit on the socket
        // error; the hub drops each connection as it reads EOF).
        for i in 0..self.conns.len() {
            self.teardown(ServerId(i as u16));
        }
        // Then retire the poller thread itself, deterministically: when
        // drop returns, the session holds no threads and no sockets.
        if let ReaderBackend::Hub(hub) = &mut self.reader {
            let _ = hub.ctl.send(HubCtl::Exit);
            hub.waker.wake();
            if let Some(handle) = hub.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Pumps decoded replies from one connection into the session's event
/// channel until the connection dies. The [`MessageReader`] decodes each
/// reply in place: a read's 64 KiB value is a view of the receive
/// buffer, and value-free acks recycle theirs.
fn reader_loop(mut stream: TcpStream, server: ServerId, gen: u64, events: Sender<SessionEvent>) {
    let mut scratch = MessageReader::new();
    loop {
        match scratch.read(&mut stream) {
            Ok(msg) => {
                if events.send(SessionEvent::Reply(msg)).is_err() {
                    return; // session gone
                }
            }
            Err(_) => {
                let _ = events.send(SessionEvent::Disconnected(server, gen));
                return;
            }
        }
    }
}
