//! A blocking TCP client.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use hts_core::ClientCore;
use hts_types::{codec::Hello, ClientId, Message, ObjectId, RequestId, ServerId, Value};

use crate::framing::{write_message_with, MessageReader};

/// A synchronous client of a TCP `hts` cluster.
///
/// Wraps [`ClientCore`]: one operation in flight, a reply timeout, and
/// retry against the next server when the contacted one is silent or its
/// connection breaks — the paper's client behaviour (§3).
///
/// See the [crate docs](crate) for an example.
pub struct Client {
    core: ClientCore,
    addrs: Vec<SocketAddr>,
    connections: Vec<Option<TcpStream>>,
    id: ClientId,
    timeout: Duration,
    /// Reusable encode buffer: one allocation for the client's lifetime
    /// instead of one per request.
    scratch: BytesMut,
    /// Reusable decode buffer, same deal: value-free replies (write
    /// acks) recycle one receive allocation across messages.
    reader: MessageReader,
    /// Stats requests issued so far; their ids count *down* from
    /// `u64::MAX` so they can never collide with the core's op request
    /// ids (which count up from 1).
    stats_seq: u64,
}

/// Retry budget shared by [`Client`] and [`Session`](crate::Session):
/// an operation is abandoned after this many full cycles of attempts
/// around the ring (`addrs.len() * RETRY_CYCLES` sends in total).
pub(crate) const RETRY_CYCLES: usize = 8;

/// Validates a cluster address map: non-empty, small enough to index by
/// [`ServerId`], and containing `preferred`. Shared by [`Client`] and
/// [`Session`](crate::Session) so a bad deployment description surfaces
/// as a real connect error instead of a panic deep in a worker thread.
pub(crate) fn validate_addrs(addrs: &[SocketAddr], preferred: ServerId) -> io::Result<()> {
    if addrs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "need at least one server address",
        ));
    }
    if addrs.len() > usize::from(u16::MAX) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{} servers exceed the u16 ServerId space", addrs.len()),
        ));
    }
    if preferred.index() >= addrs.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{preferred} outside the {}-server address map", addrs.len()),
        ));
    }
    Ok(())
}

/// Unwraps the value of a completed read: the core attaches one to every
/// read completion, so its absence is a protocol bug — reported to the
/// caller, not panicked on the client thread. Shared by [`Client`] and
/// [`Session`](crate::Session).
pub(crate) fn require_read_value(value: Option<Value>) -> io::Result<Value> {
    value.ok_or_else(|| io::Error::other("read completed without a value"))
}

impl Client {
    /// Connects lazily to a cluster at `addrs` (indexed by [`ServerId`]).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] for an empty or oversized
    /// address map. Connections themselves are opened on first use, so
    /// unreachable servers surface from the operations, not from here.
    pub fn connect(id: u32, addrs: Vec<SocketAddr>) -> io::Result<Client> {
        Client::connect_preferring(id, addrs, ServerId(0))
    }

    /// Connects lazily, preferring `preferred` as the first server to
    /// contact (useful for pinning load, and for tests that must observe
    /// one specific server — e.g. a freshly restarted one).
    ///
    /// # Errors
    ///
    /// As [`Client::connect`], plus [`io::ErrorKind::InvalidInput`] when
    /// `preferred` is outside the address map.
    pub fn connect_preferring(
        id: u32,
        addrs: Vec<SocketAddr>,
        preferred: ServerId,
    ) -> io::Result<Client> {
        validate_addrs(&addrs, preferred)?;
        let n = addrs.len() as u16;
        let id = ClientId(id);
        Ok(Client {
            core: ClientCore::new(id, ObjectId::SINGLE, n, preferred),
            addrs,
            connections: (0..n).map(|_| None).collect(),
            id,
            timeout: Duration::from_millis(500),
            scratch: BytesMut::new(),
            reader: MessageReader::new(),
            stats_seq: 0,
        })
    }

    /// Sets the per-attempt reply timeout (default 500 ms).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The alive-map the client routes by (test/diagnostic hook): entry
    /// `s` is `false` while server `s` is suspected crashed. Suspicions
    /// recover on successful reconnects and periodic re-probes.
    pub fn believed_alive(&self) -> &[bool] {
        self.core.believed_alive()
    }

    /// Writes `value` to the register, blocking until acknowledged.
    ///
    /// # Errors
    ///
    /// Fails only when every server is unreachable for a full retry cycle.
    pub fn write(&mut self, value: Value) -> io::Result<()> {
        let (request, server, msg) = self.core.begin_write(value);
        let _ = request;
        self.run_to_completion(server, msg).map(|_| ())
    }

    /// Writes `value` into register `object` (multi-register stores).
    ///
    /// # Errors
    ///
    /// As [`Client::write`].
    pub fn write_to(&mut self, object: ObjectId, value: Value) -> io::Result<()> {
        let (_, server, msg) = self.core.begin_write_to(object, value);
        self.run_to_completion(server, msg).map(|_| ())
    }

    /// Reads the register, blocking until a server answers.
    ///
    /// # Errors
    ///
    /// As [`Client::write`].
    pub fn read(&mut self) -> io::Result<Value> {
        let (_, server, msg) = self.core.begin_read();
        self.run_to_completion(server, msg)
            .and_then(require_read_value)
    }

    /// Reads register `object`.
    ///
    /// # Errors
    ///
    /// As [`Client::write`].
    pub fn read_from(&mut self, object: ObjectId) -> io::Result<Value> {
        let (_, server, msg) = self.core.begin_read_from(object);
        self.run_to_completion(server, msg)
            .and_then(require_read_value)
    }

    fn run_to_completion(
        &mut self,
        mut server: ServerId,
        mut msg: Message,
    ) -> io::Result<Option<Value>> {
        // Each attempt: (re)connect, send, await the matching reply until
        // the timeout, else rotate to the next server via the core.
        let max_attempts = self.addrs.len() * RETRY_CYCLES;
        for _ in 0..max_attempts {
            let outcome = self.attempt(server, &msg);
            match outcome {
                Ok(Some(value)) => return Ok(value),
                Ok(None) | Err(_) => {
                    self.connections[server.index()] = None;
                    let request = match &msg {
                        Message::WriteReq { request, .. } | Message::ReadReq { request, .. } => {
                            *request
                        }
                        // ClientCore only ever hands out register requests
                        // (stats go through [`Client::stats`], not the
                        // core); a reply or ring frame here is a core bug,
                        // surfaced as an error rather than a client-thread
                        // panic.
                        Message::WriteAck { .. }
                        | Message::ReadAck { .. }
                        | Message::StatsRequest { .. }
                        | Message::StatsReply { .. }
                        | Message::Ring(_)
                        | Message::RingBatch(_) => {
                            return Err(io::Error::other("client core produced a non-request"))
                        }
                    };
                    // A socket-level error (refused, reset, broken pipe)
                    // is the failure detector speaking: mark the server
                    // suspect so future operations skip it, where a mere
                    // silence (`Ok(None)`) only rotates this request. A
                    // suspicion is never forever — reconnects, re-probes
                    // and completions heal the alive-map.
                    let resend = if outcome.is_err() {
                        self.core.on_server_down(server)
                    } else {
                        None
                    }
                    .or_else(|| self.core.on_timeout(request));
                    match resend {
                        Some((next_server, next_msg)) => {
                            server = next_server;
                            msg = next_msg;
                        }
                        None => return Err(io::Error::other("request completed out of band")),
                    }
                }
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "no server answered after a full retry cycle",
        ))
    }

    /// One attempt against one server. `Ok(Some)` = completed; `Ok(None)` =
    /// timed out waiting (server alive but slow, or reply lost). The
    /// whole attempt — including any number of stale replies from
    /// earlier attempts — runs under ONE deadline: each stale reply
    /// shrinks the remaining read budget instead of resetting it, so a
    /// burst of stale traffic can never extend an attempt beyond its
    /// per-attempt timeout (the retry/rotation logic upstream depends on
    /// attempts actually ending on time).
    fn attempt(&mut self, server: ServerId, msg: &Message) -> io::Result<Option<Option<Value>>> {
        self.ensure_connection(server)?;
        let deadline = Instant::now() + self.timeout;
        // Field-disjoint borrows: the socket, the protocol core and the
        // scratch encode buffer.
        let Client {
            connections,
            core,
            scratch,
            reader,
            timeout,
            ..
        } = self;
        let Some(stream) = connections[server.index()].as_mut() else {
            return Err(io::Error::other("connection lost between ensure and send"));
        };
        // A previous attempt's stale-reply handling may have left a
        // shrunken read timeout on this reused connection.
        stream.set_read_timeout(Some(*timeout))?;
        hts_types::sync::blocking_syscall("client request send");
        write_message_with(stream, msg, scratch)?;
        loop {
            match reader.read(stream) {
                Ok(reply) => {
                    if let Some(done) = core.on_reply(&reply) {
                        return Ok(Some(done.value));
                    }
                    // Stale reply from an earlier attempt: keep waiting,
                    // but only for what is left of THIS attempt's budget.
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Ok(None);
                    }
                    stream.set_read_timeout(Some(remaining))?;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetches `server`'s live metrics registry as Prometheus-style text
    /// exposition (the server-side [`hts_metrics::render`]; empty when
    /// the server was built with the `metrics` feature off).
    ///
    /// Stats deliberately bypass the retry rotation: the caller asks ONE
    /// server for ITS process-wide registry — a different server
    /// answering would silently report the wrong process. The exchange
    /// still runs under the ordinary per-attempt timeout and tolerates
    /// stale op replies arriving on the shared connection.
    ///
    /// # Errors
    ///
    /// Connect, send and timeout errors against that specific server.
    pub fn stats(&mut self, server: ServerId) -> io::Result<String> {
        if server.index() >= self.addrs.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{server} outside the {}-server address map",
                    self.addrs.len()
                ),
            ));
        }
        self.ensure_connection(server)?;
        self.stats_seq += 1;
        let request = RequestId(u64::MAX - self.stats_seq);
        let deadline = Instant::now() + self.timeout;
        let result = await_stats_reply(
            self.connections[server.index()].as_mut(),
            &mut self.scratch,
            &mut self.reader,
            self.timeout,
            deadline,
            request,
        );
        if result.is_err() {
            // Socket-level failures poison the connection exactly like a
            // failed op attempt; the next call reconnects.
            self.connections[server.index()] = None;
        }
        result
    }

    /// (Re)opens the connection to `server`, bounding the TCP connect by
    /// the same per-attempt timeout as replies: a SYN-blackholed server
    /// (dead host, dropped packets, full accept backlog) must cost one
    /// attempt budget, not the OS connect timeout of minutes — the
    /// caller then rotates to the next server exactly as it does for a
    /// silent one.
    fn ensure_connection(&mut self, server: ServerId) -> io::Result<()> {
        if self.connections[server.index()].is_none() {
            let mut stream = TcpStream::connect_timeout(&self.addrs[server.index()], self.timeout)?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(self.timeout))?;
            stream.write_all(&Hello::Client(self.id).encode())?;
            self.connections[server.index()] = Some(stream);
            // A successful (re)connect is proof of life: clear any
            // suspicion so routing may prefer this server again — this
            // is how a restarted server stops being shunned forever.
            self.core.on_server_up(server);
        }
        Ok(())
    }
}

/// One send-and-await round for [`Client::stats`]: writes the request,
/// then reads until the matching [`Message::StatsReply`] arrives. Stale
/// replies (from earlier timed-out ops or stats attempts) only spend the
/// remaining attempt budget — they never reset it.
fn await_stats_reply(
    stream: Option<&mut TcpStream>,
    scratch: &mut BytesMut,
    reader: &mut MessageReader,
    timeout: Duration,
    deadline: Instant,
    request: RequestId,
) -> io::Result<String> {
    let Some(stream) = stream else {
        return Err(io::Error::other("connection lost between ensure and send"));
    };
    stream.set_read_timeout(Some(timeout))?;
    hts_types::sync::blocking_syscall("client stats send");
    write_message_with(stream, &Message::StatsRequest { request }, scratch)?;
    let timed_out = || io::Error::new(io::ErrorKind::TimedOut, "no stats reply within the timeout");
    loop {
        match reader.read(stream) {
            Ok(Message::StatsReply { request: r, text }) if r == request => {
                return Ok(String::from_utf8_lossy(text.as_bytes()).into_owned());
            }
            // Every non-matching message is equally stale here: it only
            // spends budget, nothing dispatches on its variant.
            // lint: allow(message_catch_all): no per-variant behavior
            Ok(_) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(timed_out());
                }
                stream.set_read_timeout(Some(remaining))?;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(timed_out());
            }
            Err(e) => return Err(e),
        }
    }
}
