//! Real TCP runtime for the `hts` atomic storage.
//!
//! The same sans-io cores (`hts-core`) that drive the simulator run here
//! over real sockets, on one machine or a LAN. Two wire-identical
//! backends serve a node's sockets: the **reactor** (default on Linux) —
//! one epoll-driven thread per ring lane owns every connection, so a
//! node runs on `lanes + 1` threads regardless of connection count —
//! and the **threaded** baseline (`Config::reactor = false`, or any
//! non-Linux host), one OS thread per connection with blocking I/O.
//! Either way:
//!
//! * each server listens on one address; clients and the ring predecessor
//!   connect to it (a 3-byte [`Hello`](hts_types::codec::Hello) handshake
//!   declares who is calling);
//! * each server keeps one long-lived TCP connection **per ring lane**
//!   to its ring successor (`Config::lanes`, default 1 — exactly the
//!   single connection §2 prescribes); a broken connection **is** the
//!   perfect failure detector — the predecessor splices the lane's ring
//!   and retransmits, the successor-side adopter completes orphaned
//!   writes;
//! * ring frames are pulled from the core one at a time as the previous
//!   frame drains into the socket, which is where the fairness rule runs
//!   (the kernel's send buffer plays the role of the NIC TX queue);
//! * with `lanes = R > 1`, objects partition across `R` independent ring
//!   instances (`hts_core::LaneMap` placement), each lane owning its own
//!   event-loop thread, outbound coalescing writer, inbound stream and
//!   WAL directory — one node then scales across cores instead of
//!   serializing every object through one event loop;
//! * clients come in two shapes: the sequential [`Client`] (one
//!   operation in flight, the paper's §3 client) and the pipelined
//!   [`Session`] (a window of many concurrent operations multiplexed
//!   over one socket per server, replies matched out of order by a
//!   dedicated reader thread, requests coalesced into one flush per
//!   burst).
//!
//! Performance experiments live on the simulator (`hts-bench`), where
//! bandwidth is controlled; this runtime demonstrates the protocol
//! end-to-end — see `examples/quickstart.rs` and the crash-recovery
//! integration tests.
//!
//! # Examples
//!
//! ```
//! use hts_net::{Client, Cluster};
//! use hts_types::Value;
//!
//! let cluster = Cluster::launch(3)?;
//! let mut client = Client::connect(1, cluster.addrs())?;
//! client.write(Value::from_u64(42))?;
//! assert_eq!(client.read()?, Value::from_u64(42));
//! cluster.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod cluster;
mod framing;
mod reactor;
mod server;
mod session;

pub use client::Client;
pub use cluster::Cluster;
pub use framing::{
    read_message, read_message_copied, write_message, MessageReader, MAX_FRAME_BYTES,
};
pub use server::{Server, ServerConfig};
pub use session::Session;
