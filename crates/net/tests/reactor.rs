//! Reactor-backend edge cases over real TCP: deterministic teardown
//! (dropped servers release their port and close every connection),
//! reconnect-while-writable races on the outbound ring, and
//! backend equivalence — the same kill/restart scenario is linearizable
//! with `Config::reactor` on and off.

use std::fs;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hts_core::Config;
use hts_lincheck::{check_conditions, History};
use hts_net::{Cluster, Server, ServerConfig, Session};
use hts_types::{codec::Hello, ClientId, RequestId, ServerId, Value};

fn tmp_base(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hts-net-reactor-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn nanos_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

/// Whether this process runs the reactor backend (mirrors the dispatch
/// in `Server::spawn`: Linux, not overridden by `HTS_REACTOR=0`).
fn reactor_active() -> bool {
    cfg!(target_os = "linux") && std::env::var_os("HTS_REACTOR").is_none_or(|v| v != "0")
}

/// Reserves `n` ephemeral localhost ports (the cluster-harness trick:
/// bind, record, drop).
fn reserve_addrs(n: u16) -> Vec<std::net::SocketAddr> {
    let holders: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve"))
        .collect();
    holders
        .iter()
        .map(|h| h.local_addr().expect("addr"))
        .collect()
}

#[test]
fn dropped_server_port_is_immediately_rebindable() {
    let addrs = reserve_addrs(2);
    let spawn = |id: u16| {
        Server::spawn(ServerConfig {
            id: ServerId(id),
            addrs: addrs.clone(),
            config: Config::default(),
            wal_dir: None,
        })
        .expect("spawn")
    };
    let s0 = spawn(0);
    let s1 = spawn(1);

    // Live traffic so the servers hold accepted connections too.
    let mut session = Session::connect(1, addrs.clone(), 4).expect("session");
    session.set_timeout(Duration::from_millis(500));
    session.write(Value::from_u64(7)).expect("write");
    drop(session);

    // Drop (not shutdown): the reactor joins its threads and closes
    // every fd — listener included — before `drop` returns, so the port
    // is free the moment the next statement runs.
    drop(s0);
    drop(s1);
    if reactor_active() {
        for addr in &addrs {
            TcpListener::bind(addr).expect("port must be rebindable right after drop");
        }
    } else {
        // The threaded backend's acceptor exits asynchronously; allow it
        // a bounded moment (this leg keeps the fallback honest, not
        // instant).
        for addr in &addrs {
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                match TcpListener::bind(addr) {
                    Ok(_) => break,
                    Err(e) if Instant::now() >= deadline => {
                        panic!("port still bound 2s after drop: {e}")
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        }
    }
}

#[test]
fn dropped_server_closes_accepted_connections() {
    let addrs = reserve_addrs(2);
    let servers: Vec<Server> = (0..2)
        .map(|id| {
            Server::spawn(ServerConfig {
                id: ServerId(id),
                addrs: addrs.clone(),
                config: Config::default(),
                wal_dir: None,
            })
            .expect("spawn")
        })
        .collect();

    // A raw client connection (hello only, no request in flight).
    let mut probe = TcpStream::connect(addrs[0]).expect("connect");
    probe
        .write_all(&Hello::Client(ClientId(9)).encode())
        .expect("hello");
    probe
        .set_read_timeout(Some(Duration::from_secs(3)))
        .expect("timeout");

    drop(servers);

    // The server side must have closed the socket: the read observes
    // EOF or a reset — anything but hanging until the timeout.
    let mut byte = [0u8; 1];
    match probe.read(&mut byte) {
        Ok(0) => {}                                                // clean FIN
        Err(e) if e.kind() != std::io::ErrorKind::WouldBlock => {} // RST is fine too
        other => panic!("connection not closed by dropped server: {other:?}"),
    }
}

#[test]
fn reconnect_while_writable_races_stay_consistent() {
    // Hammer writes through a pipelined session while the ring successor
    // bounces twice: the predecessor's outbound connection dies with a
    // staged batch in its socket, reconnects (nonblocking connect racing
    // write-readiness events), and retransmits. Every acknowledged write
    // must stay atomic; the bounced server must end up back in the ring.
    let base = tmp_base("reconnect");
    let config = Config {
        lanes: 2,
        ..Config::default()
    };
    let mut cluster = Cluster::launch_durable(2, config, &base).expect("launch");
    let addrs = cluster.addrs();

    let mut session = Session::connect(1, addrs.clone(), 8).expect("session");
    session.set_timeout(Duration::from_millis(400));

    let mut issued: Vec<RequestId> = Vec::new();
    let mut last_ok = 0u64;
    for round in 0..2u64 {
        for i in 0..24u64 {
            let v = round * 100 + i + 1;
            issued.push(session.begin_write(Value::from_u64(v)).expect("begin"));
            if issued.len() >= 8 {
                let r = issued.remove(0);
                if session.wait(r).is_ok() {
                    last_ok += 1;
                }
            }
        }
        // Kill the successor mid-pipeline; restart it while the
        // predecessor is still retrying/queueing.
        cluster.crash(ServerId(1)).expect("crash");
        std::thread::sleep(Duration::from_millis(100));
        cluster.restart(ServerId(1)).expect("restart");
    }
    for r in issued {
        if session.wait(r).is_ok() {
            last_ok += 1;
        }
    }
    assert!(last_ok > 0, "no write survived the reconnect churn at all");
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(cluster.alive(), 2);

    // The ring must still commit fresh writes end to end after the churn.
    session
        .write(Value::from_u64(9_999))
        .expect("post-churn write");
    assert_eq!(
        session.read().expect("post-churn read"),
        Value::from_u64(9_999)
    );

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}

/// One kill/restart scenario under a pipelined load, with the full
/// history linearizability-checked. Runs identically for either backend
/// — `reactor` only flips `Config::reactor`.
fn kill_restart_scenario(reactor: bool, tag: &str) {
    let base = tmp_base(tag);
    let config = Config {
        lanes: 2,
        reactor,
        ..Config::default()
    };
    let mut cluster = Cluster::launch_durable(3, config, &base).expect("launch");
    let addrs = cluster.addrs();
    let epoch = Instant::now();
    let history = Arc::new(Mutex::new(History::new()));

    let mut workers = Vec::new();
    for t in 0..2u32 {
        let addrs = addrs.clone();
        let history = Arc::clone(&history);
        workers.push(std::thread::spawn(move || {
            let id = ClientId(20 + t);
            let mut session =
                Session::connect_preferring(20 + t, addrs, ServerId(t as u16), 8).expect("session");
            session.set_timeout(Duration::from_millis(400));
            let mut in_flight: Vec<(RequestId, hts_lincheck::OpId, bool)> = Vec::new();
            let mut seq = 0u64;
            let mut done = 0u64;
            while done < 40 {
                while in_flight.len() < 8 && seq < 40 {
                    seq += 1;
                    if seq.is_multiple_of(4) {
                        let op = history.lock().unwrap().invoke_read(id, nanos_since(epoch));
                        in_flight.push((session.begin_read().expect("begin_read"), op, true));
                    } else {
                        let value = Value::from_u64(u64::from(id.0) * 1_000_000 + seq);
                        let op = history.lock().unwrap().invoke_write(
                            id,
                            value.clone(),
                            nanos_since(epoch),
                        );
                        in_flight.push((
                            session.begin_write(value).expect("begin_write"),
                            op,
                            false,
                        ));
                    }
                }
                let (request, op, is_read) = in_flight.remove(0);
                let value = session.wait(request).expect("wait");
                let now = nanos_since(epoch);
                let mut h = history.lock().unwrap();
                if is_read {
                    h.complete_read(op, value.expect("read value"), now);
                } else {
                    h.complete_write(op, now);
                }
                done += 1;
            }
            done
        }));
    }

    std::thread::sleep(Duration::from_millis(80));
    cluster.crash(ServerId(2)).expect("crash");
    std::thread::sleep(Duration::from_millis(200));
    cluster.restart(ServerId(2)).expect("restart");

    for worker in workers {
        assert_eq!(worker.join().expect("worker"), 40);
    }
    assert_eq!(cluster.alive(), 3);

    let history = history.lock().unwrap();
    // The conditions checker is the authority on a concurrent merged
    // history (the exhaustive one blows up combinatorially on 80
    // overlapping ops; the sequential suites cover it).
    let violations = check_conditions(&history);
    assert!(
        violations.is_empty(),
        "atomicity violations (reactor={reactor}): {violations:?}\n{history}"
    );

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn backend_equivalence_reactor_on() {
    kill_restart_scenario(true, "equiv-on");
}

#[test]
fn backend_equivalence_reactor_off() {
    kill_restart_scenario(false, "equiv-off");
}
