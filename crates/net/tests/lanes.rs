//! End-to-end TCP tests of the parallel ring lanes: objects partitioned
//! across independent per-lane rings (each with its own connections and
//! WAL) must be invisible to clients — per-object histories stay
//! linearizable through kill/restart even with aggressive batching, a
//! single-lane cluster behaves exactly like the pre-lane runtime, and
//! each lane replays its own log on restart.

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hts_core::{BatchConfig, Config, LaneMap};
use hts_lincheck::{check_conditions, History};
use hts_net::{Client, Cluster};
use hts_sim::Nanos;
use hts_types::{ClientId, ObjectId, ServerId, Value};

fn tmp_base(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hts-net-lanes-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn nanos_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

/// Aggressive batching + a real linger on top of multiple lanes: the
/// coalescing writer paths all run under load, per lane.
fn laned_config(lanes: u16) -> Config {
    Config {
        lanes,
        batching: BatchConfig {
            max_frames: 64,
            max_bytes: 1024 * 1024,
            linger: Nanos::from_micros(200),
        },
        ..Config::default()
    }
}

#[test]
fn objects_roundtrip_across_lanes() {
    // One client connection reaches every lane: requests demux by
    // object, replies from all lanes coalesce back over the same socket.
    let cluster = Cluster::launch_with(3, laned_config(4)).expect("launch laned cluster");
    let mut client = Client::connect(1, cluster.addrs()).expect("client");
    client.set_timeout(Duration::from_millis(500));
    for i in 0..16u32 {
        client
            .write_to(ObjectId(i), Value::from_u64(u64::from(i) + 100))
            .expect("write");
    }
    for i in 0..16u32 {
        assert_eq!(
            client.read_from(ObjectId(i)).expect("read"),
            Value::from_u64(u64::from(i) + 100),
            "object {i}"
        );
    }
    cluster.shutdown();
}

#[test]
fn multi_lane_lincheck_under_kill_restart() {
    // Four workers, each on its own object (objects spread across both
    // lanes by the shared placement), aggressive batching, and a server
    // bounced mid-run: every per-object history must stay atomic —
    // each lane recovers through its own rejoin/resync protocol.
    let base = tmp_base("lincheck");
    let mut cluster =
        Cluster::launch_durable(3, laned_config(2), &base).expect("launch laned cluster");
    let addrs = cluster.addrs();
    let epoch = Instant::now();
    let histories: Vec<Arc<Mutex<History>>> = (0..4)
        .map(|_| Arc::new(Mutex::new(History::new())))
        .collect();

    let map = LaneMap::new(2);
    let mut lanes_hit = [false; 2];
    let mut workers = Vec::new();
    for t in 0..4u32 {
        let addrs = addrs.clone();
        let history = Arc::clone(&histories[t as usize]);
        let object = ObjectId(t);
        lanes_hit[usize::from(map.lane_of(object))] = true;
        workers.push(std::thread::spawn(move || {
            let preferred = ServerId(t as u16 % 3);
            let mut client = Client::connect_preferring(40 + t, addrs, preferred).expect("client");
            client.set_timeout(Duration::from_millis(300));
            let id = ClientId(40 + t);
            for i in 0..15u64 {
                if i % 3 == 2 {
                    let op = history.lock().unwrap().invoke_read(id, nanos_since(epoch));
                    let got = client.read_from(object).expect("read");
                    history
                        .lock()
                        .unwrap()
                        .complete_read(op, got, nanos_since(epoch));
                } else {
                    let value = Value::from_u64(u64::from(t) * 1_000 + i + 1);
                    let op =
                        history
                            .lock()
                            .unwrap()
                            .invoke_write(id, value.clone(), nanos_since(epoch));
                    client.write_to(object, value).expect("write");
                    history
                        .lock()
                        .unwrap()
                        .complete_write(op, nanos_since(epoch));
                }
            }
        }));
    }
    assert!(
        lanes_hit.iter().all(|h| *h),
        "test objects must exercise both lanes: {lanes_hit:?}"
    );

    // Bounce s1 while both lanes are under fire: each lane's recovery
    // stream and rejoin announcement travel its own batched link.
    std::thread::sleep(Duration::from_millis(40));
    cluster.crash(ServerId(1)).expect("crash");
    std::thread::sleep(Duration::from_millis(150));
    cluster.restart(ServerId(1)).expect("restart");

    for worker in workers {
        worker.join().expect("worker");
    }
    assert_eq!(cluster.alive(), 3);

    for (t, history) in histories.iter().enumerate() {
        let history = history.lock().unwrap();
        let violations = check_conditions(&history);
        assert!(
            violations.is_empty(),
            "object {t}: atomicity violations under lanes + kill/restart: {violations:?}\n{history}"
        );
    }

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn single_lane_cluster_matches_the_laned_runtime() {
    // lanes = 1 must behave exactly like the pre-lane runtime (same
    // answers, same WAL layout: no lane subdirectories); more lanes are
    // a pure performance setting (same answers, per-lane directories).
    let run = |lanes: u16, tag: &str| -> (Vec<Value>, PathBuf) {
        let base = tmp_base(tag);
        let cluster = Cluster::launch_durable(3, laned_config(lanes), &base).expect("launch");
        let mut client = Client::connect(1, cluster.addrs()).expect("client");
        client.set_timeout(Duration::from_millis(300));
        let mut reads = Vec::new();
        for i in 1..=10u64 {
            let object = ObjectId((i % 4) as u32);
            client.write_to(object, Value::from_u64(i)).expect("write");
            reads.push(client.read_from(object).expect("read"));
        }
        cluster.shutdown();
        (reads, base)
    };
    let (single, single_base) = run(1, "equiv-single");
    let (laned, laned_base) = run(4, "equiv-laned");
    assert_eq!(single, laned);
    assert_eq!(single.last(), Some(&Value::from_u64(10)));

    // WAL layout: lanes = 1 logs straight into the server directory
    // (today's layout, no lane-* nesting); lanes = 4 logs per lane.
    let single_s0 = single_base.join("server-0");
    assert!(
        !single_s0.join("lane-0").exists(),
        "single-lane server must not nest lane directories"
    );
    assert!(
        fs::read_dir(&single_s0)
            .map(|mut d| d.next().is_some())
            .unwrap_or(false),
        "single-lane server logs into its base directory"
    );
    let laned_s0 = laned_base.join("server-0");
    for lane in 0..4 {
        assert!(
            laned_s0.join(format!("lane-{lane}")).is_dir(),
            "lane {lane} WAL directory missing"
        );
    }
    let _ = fs::remove_dir_all(&single_base);
    let _ = fs::remove_dir_all(&laned_base);
}

#[test]
fn restarted_laned_server_resyncs_every_lane() {
    // A write committed while the server was down lands in SOME lane;
    // after restart, reads pinned to the restarted server must see it —
    // and pre-crash writes on the other lane too — proving both lanes
    // replayed their own WAL and resynced their own ring.
    let map = LaneMap::new(2);
    let (a, b) = (map.token_object(0), map.token_object(1));
    let base = tmp_base("resync");
    let mut cluster = Cluster::launch_durable(3, laned_config(2), &base).expect("launch");
    let addrs = cluster.addrs();
    let mut writer = Client::connect(1, addrs.clone()).expect("writer");
    writer.set_timeout(Duration::from_millis(300));
    for i in 1..=4u64 {
        writer
            .write_to(a, Value::from_u64(i))
            .expect("lane-0 write");
        writer
            .write_to(b, Value::from_u64(10 + i))
            .expect("lane-1 write");
    }

    cluster.crash(ServerId(2)).expect("crash");
    std::thread::sleep(Duration::from_millis(150));
    // Committed while s2 is down: neither of its lane logs has these.
    writer
        .write_to(a, Value::from_u64(99))
        .expect("downtime write");
    writer
        .write_to(b, Value::from_u64(199))
        .expect("downtime write");

    cluster.restart(ServerId(2)).expect("restart");
    std::thread::sleep(Duration::from_millis(400));

    let mut reader = Client::connect_preferring(50, addrs, ServerId(2)).expect("reader at s2");
    reader.set_timeout(Duration::from_millis(500));
    assert_eq!(
        reader
            .read_from(a)
            .expect("lane-0 read via restarted server"),
        Value::from_u64(99),
        "restarted server served stale lane-0 data"
    );
    assert_eq!(
        reader
            .read_from(b)
            .expect("lane-1 read via restarted server"),
        Value::from_u64(199),
        "restarted server served stale lane-1 data"
    );

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}
