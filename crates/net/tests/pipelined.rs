//! Pipelined [`Session`]s over real TCP: many operations in flight on
//! one socket, completions matched out of order, linearizability checked
//! across concurrent sessions — including under kill/restart on a
//! durable cluster — plus the alive-map recovery regression (a restarted
//! server must stop being shunned).

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hts_core::{Config, REPROBE_PERIOD};
use hts_lincheck::{check_conditions, check_exhaustive_bounded, History, Outcome};
use hts_net::{Client, Cluster, Session};
use hts_types::{ClientId, ObjectId, RequestId, ServerId, Value};

fn tmp_base(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hts-net-pipelined-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn nanos_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

/// Runs `total` operations through one session keeping `window` of them
/// in flight (fill the window, then complete-one/issue-one), recording
/// every operation in the shared history. Returns the number completed.
fn pipelined_load(
    session: &mut Session,
    history: &Arc<Mutex<History>>,
    epoch: Instant,
    id: ClientId,
    total: u64,
    window: usize,
) -> u64 {
    use hts_lincheck::OpId;
    let mut in_flight: Vec<(RequestId, OpId, bool)> = Vec::new();
    let mut completed = 0u64;
    let mut seq = 0u64;
    while completed < total {
        // Fill the window (`seq` counts issued operations).
        while in_flight.len() < window && seq < total {
            seq += 1;
            let is_read = seq.is_multiple_of(3);
            if is_read {
                let op = history.lock().unwrap().invoke_read(id, nanos_since(epoch));
                let request = session.begin_read().expect("begin_read");
                in_flight.push((request, op, true));
            } else {
                // Globally unique values let the checker map reads to
                // writes.
                let value = Value::from_u64(u64::from(id.0) * 1_000_000 + seq);
                let op =
                    history
                        .lock()
                        .unwrap()
                        .invoke_write(id, value.clone(), nanos_since(epoch));
                let request = session.begin_write(value).expect("begin_write");
                in_flight.push((request, op, false));
            }
        }
        // Complete the oldest (younger requests may well finish first
        // inside the session; `wait` matches by id, not arrival order).
        let (request, op, is_read) = in_flight.remove(0);
        let value = session.wait(request).expect("wait");
        let now = nanos_since(epoch);
        let mut h = history.lock().unwrap();
        if is_read {
            h.complete_read(op, value.expect("read value"), now);
        } else {
            h.complete_write(op, now);
        }
        completed += 1;
    }
    completed
}

#[test]
fn eight_in_flight_on_one_session_is_linearizable() {
    let cluster = Cluster::launch(3).expect("launch");
    let addrs = cluster.addrs();
    let epoch = Instant::now();
    let history = Arc::new(Mutex::new(History::new()));

    let mut session = Session::connect(1, addrs, 8).expect("session");
    session.set_timeout(Duration::from_millis(500));
    let done = pipelined_load(&mut session, &history, epoch, ClientId(1), 48, 8);
    assert_eq!(done, 48);
    assert_eq!(session.in_flight(), 0, "window drained");

    let history = history.lock().unwrap();
    let violations = check_conditions(&history);
    assert!(
        violations.is_empty(),
        "atomicity violations with 8 in flight: {violations:?}\n{history}"
    );
    assert!(
        matches!(
            check_exhaustive_bounded(&history, 5_000_000),
            Outcome::Linearizable | Outcome::Unknown
        ),
        "exhaustive checker rejected the pipelined history\n{history}"
    );
    cluster.shutdown();
}

#[test]
fn concurrent_sessions_under_kill_restart_stay_atomic() {
    // Three pipelined sessions (window 8 each, ≥ 8 in flight per socket)
    // hammer a durable cluster while one server is killed and restarted
    // mid-load; the merged history must stay linearizable.
    let base = tmp_base("killrestart");
    let mut cluster = Cluster::launch_durable(3, Config::default(), &base).expect("launch");
    let addrs = cluster.addrs();
    let epoch = Instant::now();
    let history = Arc::new(Mutex::new(History::new()));

    let mut workers = Vec::new();
    for t in 0..3u32 {
        let addrs = addrs.clone();
        let history = Arc::clone(&history);
        workers.push(std::thread::spawn(move || {
            let preferred = ServerId(t as u16 % 3);
            let mut session =
                Session::connect_preferring(10 + t, addrs, preferred, 8).expect("session");
            session.set_timeout(Duration::from_millis(400));
            pipelined_load(&mut session, &history, epoch, ClientId(10 + t), 60, 8)
        }));
    }

    // Bounce s2 while the pipelines are full.
    std::thread::sleep(Duration::from_millis(80));
    cluster.crash(ServerId(2)).expect("crash");
    std::thread::sleep(Duration::from_millis(200));
    cluster.restart(ServerId(2)).expect("restart");

    for worker in workers {
        assert_eq!(worker.join().expect("worker"), 60);
    }
    assert_eq!(cluster.alive(), 3);

    let history = history.lock().unwrap();
    let violations = check_conditions(&history);
    assert!(
        violations.is_empty(),
        "atomicity violations across kill+restart: {violations:?}\n{history}"
    );

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn session_multiplexes_objects_out_of_order() {
    // Writes to distinct registers pipelined on one socket, waited in
    // reverse order: every completion must match its own request.
    let cluster = Cluster::launch(2).expect("launch");
    let mut session = Session::connect(1, cluster.addrs(), 16).expect("session");
    let mut handles = Vec::new();
    for i in 0..12u32 {
        let h = session
            .begin_write_to(ObjectId(i), Value::from_u64(u64::from(i) + 100))
            .expect("begin");
        handles.push((i, h));
    }
    for &(_, h) in handles.iter().rev() {
        assert_eq!(session.wait(h).expect("wait"), None);
    }
    let mut reads = Vec::new();
    for i in 0..12u32 {
        reads.push((i, session.begin_read_from(ObjectId(i)).expect("begin")));
    }
    for &(i, h) in reads.iter().rev() {
        assert_eq!(
            session.wait(h).expect("wait"),
            Some(Value::from_u64(u64::from(i) + 100)),
            "object {i}"
        );
    }
    cluster.shutdown();
}

#[test]
fn drain_settles_every_operation_even_unwaited_completions() {
    // Operations that completed inside the session before anyone waited
    // them must still be settled by drain (not skipped, not leaked).
    let cluster = Cluster::launch(2).expect("launch");
    let mut session = Session::connect(1, cluster.addrs(), 4).expect("session");
    for i in 0..12u64 {
        // Past window 4, each begin drives the pipeline: older requests
        // complete internally without a wait() call.
        session.begin_write(Value::from_u64(i)).expect("begin");
    }
    session.drain().expect("drain");
    assert_eq!(session.in_flight(), 0);
    session.drain().expect("second drain is a no-op");
    // Concurrent writes may linearize in any order; the register must
    // hold one of them.
    let settled = session.read().expect("read");
    assert!((0..12).map(Value::from_u64).any(|v| v == settled));
    cluster.shutdown();
}

#[test]
fn waiting_an_unknown_handle_is_an_error_not_a_hang() {
    let cluster = Cluster::launch(1).expect("launch");
    let mut session = Session::connect(1, cluster.addrs(), 4).expect("session");
    let err = session.wait(RequestId(999)).expect_err("unknown handle");
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    cluster.shutdown();
}

#[test]
fn empty_or_invalid_address_maps_are_rejected_with_real_errors() {
    // Regression: `Client::connect` claimed infallibility but asserted on
    // bad address maps. Both clients must return InvalidInput instead.
    fn kind_of<T>(result: std::io::Result<T>) -> std::io::ErrorKind {
        match result {
            Ok(_) => panic!("bad address map accepted"),
            Err(e) => e.kind(),
        }
    }
    let addrs: Vec<std::net::SocketAddr> = vec!["127.0.0.1:1".parse().unwrap()];
    assert_eq!(
        kind_of(Client::connect(1, Vec::new())),
        std::io::ErrorKind::InvalidInput
    );
    assert_eq!(
        kind_of(Client::connect_preferring(1, addrs.clone(), ServerId(5))),
        std::io::ErrorKind::InvalidInput
    );
    assert_eq!(
        kind_of(Session::connect(1, Vec::new(), 8)),
        std::io::ErrorKind::InvalidInput
    );
    assert_eq!(
        kind_of(Session::connect_preferring(
            1,
            addrs.clone(),
            ServerId(2),
            8
        )),
        std::io::ErrorKind::InvalidInput
    );
    assert_eq!(
        kind_of(Session::connect(1, addrs, 0)),
        std::io::ErrorKind::InvalidInput
    );
}

#[test]
fn restarted_server_is_trusted_again_after_reprobe() {
    // The alive-map recovery regression: killing the preferred server
    // marks it dead; after it restarts, the periodic re-probe plus the
    // reconnect/completion healing must bring the client back to it —
    // before the fix the suspicion was permanent.
    let base = tmp_base("reprobe");
    let mut cluster = Cluster::launch_durable(2, Config::default(), &base).expect("launch");
    let addrs = cluster.addrs();

    let mut client = Client::connect(1, addrs.clone()).expect("client");
    client.set_timeout(Duration::from_millis(300));
    client.write(Value::from_u64(1)).expect("warm up via s0");

    cluster.crash(ServerId(0)).expect("crash");
    std::thread::sleep(Duration::from_millis(200));
    client.write(Value::from_u64(2)).expect("failover write");
    assert!(
        !client.believed_alive()[0],
        "connection failure must mark s0 suspect"
    );

    cluster.restart(ServerId(0)).expect("restart");
    std::thread::sleep(Duration::from_millis(400));

    // Within one re-probe period the client must visit s0 again, observe
    // the successful reconnect and clear the suspicion.
    for i in 0..REPROBE_PERIOD + 2 {
        client.write(Value::from_u64(10 + i)).expect("write");
    }
    assert!(
        client.believed_alive()[0],
        "restarted server still shunned after a full re-probe period"
    );

    // Same recovery for the pipelined session.
    let mut session = Session::connect(2, addrs, 4).expect("session");
    session.set_timeout(Duration::from_millis(300));
    session.write(Value::from_u64(100)).expect("warm up");
    cluster.crash(ServerId(0)).expect("crash");
    std::thread::sleep(Duration::from_millis(200));
    session.write(Value::from_u64(101)).expect("failover");
    assert!(!session.believed_alive()[0], "s0 suspect after crash");
    cluster.restart(ServerId(0)).expect("restart again");
    std::thread::sleep(Duration::from_millis(400));
    for i in 0..REPROBE_PERIOD + 2 {
        session.write(Value::from_u64(200 + i)).expect("write");
    }
    assert!(
        session.believed_alive()[0],
        "restarted server still shunned by the session"
    );

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}
