//! End-to-end tests of the lock-free read fast path over real TCP: reads
//! answered on the connection's reader thread straight from the seqlock
//! cell, without a trip through the lane event loop — plus the
//! `zero_copy = false` ablation path and a lincheck run with the fast
//! path enabled across a kill + restart.

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hts_core::Config;
use hts_lincheck::{check_conditions, History};
use hts_net::{Client, Cluster};
use hts_types::{ClientId, ObjectId, ServerId, Value};

fn tmp_base(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hts-net-fastpath-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn nanos_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

/// With the ring idle, every read is answerable from the cell on the
/// reader thread — the hit counter must move, and the values must be
/// exactly what the event loop would have served.
#[cfg(feature = "metrics")]
#[test]
fn idle_ring_reads_hit_the_fast_path() {
    let cluster = Cluster::launch_with(
        3,
        Config {
            read_fast_path: true,
            ..Config::default()
        },
    )
    .expect("launch");
    let mut client = Client::connect(1, cluster.addrs()).expect("client");

    // Republish happens inside the core before the write ack flushes, so
    // by the time this returns the coordinator's cell holds the value.
    client.write(Value::from_u64(41)).expect("warm-up write");
    client.write(Value::from_u64(42)).expect("write");

    let hits_before = hts_metrics::counter("hts_net_read_fastpath_hits_total").get();
    for _ in 0..16 {
        assert_eq!(client.read().expect("read"), Value::from_u64(42));
    }
    let hits_after = hts_metrics::counter("hts_net_read_fastpath_hits_total").get();
    assert!(
        hits_after >= hits_before + 16,
        "expected >= 16 fast-path hits, counter moved {hits_before} -> {hits_after}"
    );

    // An object nobody wrote reads bottom through the same path.
    assert_eq!(
        client.read_from(ObjectId(9)).expect("read fresh object"),
        Value::bottom()
    );
    cluster.shutdown();
}

/// The copying inbound path (`zero_copy = false`) is the fig1 ablation
/// baseline: same wire format, same answers — including a value large
/// enough to span many socket reads.
#[test]
fn copying_decode_path_serves_identically() {
    let cluster = Cluster::launch_with(
        2,
        Config {
            zero_copy: false,
            ..Config::default()
        },
    )
    .expect("launch");
    let mut client = Client::connect(1, cluster.addrs()).expect("client");
    let big = Value::filled(7, 64 * 1024);
    client.write(big.clone()).expect("write 64 KiB");
    assert_eq!(client.read().expect("read"), big);
    client.write(Value::from_u64(3)).expect("overwrite");
    assert_eq!(client.read().expect("read"), Value::from_u64(3));
    cluster.shutdown();
}

/// Concurrent writers and readers with the fast path on, a server
/// bounced mid-run, and the full history checked for atomicity: the
/// reader-thread shortcut must never serve a value the event loop could
/// not have served.
#[test]
fn fast_path_stays_atomic_through_kill_restart() {
    let base = tmp_base("lincheck");
    let config = Config {
        read_fast_path: true,
        ..Config::default()
    };
    let mut cluster = Cluster::launch_durable(3, config, &base).expect("launch");
    let addrs = cluster.addrs();
    let epoch = Instant::now();
    let history = Arc::new(Mutex::new(History::new()));

    let mut workers = Vec::new();
    for t in 0..3u32 {
        let addrs = addrs.clone();
        let history = Arc::clone(&history);
        workers.push(std::thread::spawn(move || {
            let preferred = ServerId(t as u16 % 3);
            let mut client = Client::connect_preferring(10 + t, addrs, preferred).expect("client");
            client.set_timeout(Duration::from_millis(300));
            for i in 0..12u64 {
                let id = ClientId(10 + t);
                if i % 2 == 1 {
                    // Read-heavy mix: half the ops go through the cell.
                    let op = {
                        let mut h = history.lock().unwrap();
                        h.invoke_read(id, nanos_since(epoch))
                    };
                    let got = client.read().expect("read");
                    let mut h = history.lock().unwrap();
                    h.complete_read(op, got, nanos_since(epoch));
                } else {
                    let value = Value::from_u64(u64::from(t) * 1_000 + i + 1);
                    let op = {
                        let mut h = history.lock().unwrap();
                        h.invoke_write(id, value.clone(), nanos_since(epoch))
                    };
                    client.write(value).expect("write");
                    let mut h = history.lock().unwrap();
                    h.complete_write(op, nanos_since(epoch));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }));
    }

    // Bounce s2 while the workers hammer the ring: its restored state
    // must stay unreadable (cell attached blocked) until resync ends.
    std::thread::sleep(Duration::from_millis(60));
    cluster.crash(ServerId(2)).expect("crash");
    std::thread::sleep(Duration::from_millis(150));
    cluster.restart(ServerId(2)).expect("restart");

    for worker in workers {
        worker.join().expect("worker");
    }
    assert_eq!(cluster.alive(), 3);

    let history = history.lock().unwrap();
    let violations = check_conditions(&history);
    assert!(
        violations.is_empty(),
        "fast-path atomicity violations across kill+restart: {violations:?}\n{history}"
    );

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}
