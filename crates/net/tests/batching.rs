//! End-to-end TCP tests of the batched ring pipeline: aggressive frame
//! coalescing (and a non-zero linger) must be invisible to clients — the
//! full concurrent history stays linearizable through kill/restart.

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hts_core::{BatchConfig, Config};
use hts_lincheck::{check_conditions, History};
use hts_net::{Client, Cluster};
use hts_sim::Nanos;
use hts_types::{ClientId, ServerId, Value};

fn tmp_base(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hts-net-batch-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn nanos_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

/// An aggressive batching configuration: deep batches, a real linger
/// window, so the writer's coalescing paths (drain + linger top-up) all
/// run under load.
fn batched_config() -> Config {
    Config {
        batching: BatchConfig {
            max_frames: 64,
            max_bytes: 1024 * 1024,
            linger: Nanos::from_micros(200),
        },
        ..Config::default()
    }
}

#[test]
fn batched_ring_stays_atomic_under_kill_restart() {
    let base = tmp_base("lincheck");
    let mut cluster =
        Cluster::launch_durable(3, batched_config(), &base).expect("launch batched cluster");
    let addrs = cluster.addrs();
    let epoch = Instant::now();
    let history = Arc::new(Mutex::new(History::new()));

    let mut workers = Vec::new();
    for t in 0..4u32 {
        let addrs = addrs.clone();
        let history = Arc::clone(&history);
        workers.push(std::thread::spawn(move || {
            let preferred = ServerId(t as u16 % 3);
            let mut client = Client::connect_preferring(20 + t, addrs, preferred).expect("client");
            client.set_timeout(Duration::from_millis(300));
            let id = ClientId(20 + t);
            for i in 0..15u64 {
                if i % 3 == 2 {
                    let op = history.lock().unwrap().invoke_read(id, nanos_since(epoch));
                    let got = client.read().expect("read");
                    history
                        .lock()
                        .unwrap()
                        .complete_read(op, got, nanos_since(epoch));
                } else {
                    // Unique values let the condition checker map reads
                    // to writes.
                    let value = Value::from_u64(u64::from(t) * 1_000 + i + 1);
                    let op =
                        history
                            .lock()
                            .unwrap()
                            .invoke_write(id, value.clone(), nanos_since(epoch));
                    client.write(value).expect("write");
                    history
                        .lock()
                        .unwrap()
                        .complete_write(op, nanos_since(epoch));
                }
                // No sleep: keep frames queued so real batches form.
            }
        }));
    }

    // Bounce s1 while the batched ring is under fire: its recovery
    // stream and rejoin announcement travel inside batches too.
    std::thread::sleep(Duration::from_millis(40));
    cluster.crash(ServerId(1)).expect("crash");
    std::thread::sleep(Duration::from_millis(150));
    cluster.restart(ServerId(1)).expect("restart");

    for worker in workers {
        worker.join().expect("worker");
    }
    assert_eq!(cluster.alive(), 3);

    let history = history.lock().unwrap();
    let violations = check_conditions(&history);
    assert!(
        violations.is_empty(),
        "atomicity violations under batching + kill/restart: {violations:?}\n{history}"
    );

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn batched_and_unbatched_clusters_agree_end_to_end() {
    // The batching knob must be a pure performance setting: the same
    // operation sequence gives the same answers at cap 64 and cap 1.
    let run = |config: Config, tag: &str| -> Vec<Value> {
        let base = tmp_base(tag);
        let cluster = Cluster::launch_durable(3, config, &base).expect("launch");
        let mut client = Client::connect(1, cluster.addrs()).expect("client");
        client.set_timeout(Duration::from_millis(300));
        let mut reads = Vec::new();
        for i in 1..=10u64 {
            client.write(Value::from_u64(i)).expect("write");
            if i % 2 == 0 {
                reads.push(client.read().expect("read"));
            }
        }
        cluster.shutdown();
        let _ = fs::remove_dir_all(&base);
        reads
    };
    let batched = run(batched_config(), "agree-batched");
    let unbatched = run(
        Config {
            batching: BatchConfig::unbatched(),
            ..Config::default()
        },
        "agree-unbatched",
    );
    assert_eq!(batched, unbatched);
    assert_eq!(batched.last(), Some(&Value::from_u64(10)));
}

#[test]
fn restarted_server_resyncs_through_batched_stream() {
    // The rejoin certificate depends on per-link FIFO: the predecessor's
    // recovery stream must land before the announcement even when both
    // ride inside RingBatch messages. A read pinned to the restarted
    // server proves it.
    let base = tmp_base("resync");
    let mut cluster = Cluster::launch_durable(3, batched_config(), &base).expect("launch");
    let addrs = cluster.addrs();
    let mut writer = Client::connect(1, addrs.clone()).expect("writer");
    writer.set_timeout(Duration::from_millis(300));
    for i in 1..=8u64 {
        writer.write(Value::from_u64(i)).expect("pre-crash write");
    }

    cluster.crash(ServerId(2)).expect("crash");
    std::thread::sleep(Duration::from_millis(150));
    // Committed while s2 is down: its log cannot contain this write.
    writer.write(Value::from_u64(99)).expect("downtime write");

    cluster.restart(ServerId(2)).expect("restart");
    std::thread::sleep(Duration::from_millis(400));

    let mut reader = Client::connect_preferring(50, addrs, ServerId(2)).expect("reader at s2");
    reader.set_timeout(Duration::from_millis(500));
    assert_eq!(
        reader.read().expect("read via restarted server"),
        Value::from_u64(99),
        "restarted server served stale data through the batched resync"
    );

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}
