//! End-to-end tests of the live stats endpoint: a durable TCP cluster
//! under real load must answer `StatsRequest` with a Prometheus-style
//! exposition whose ring-batch, fsync and per-phase write-latency
//! histograms carry non-zero samples.
//!
//! The metrics registry is process-global, so the three in-process
//! servers share one exposition — which is exactly what these tests
//! need: proof the instrumentation fires, not per-server isolation.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use hts_core::Config;
use hts_net::{Client, Cluster};
use hts_types::{ServerId, Value};

fn tmp_base(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hts-net-stats-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The value of a `name N` counter line, or a histogram's `_count`
/// series, in a rendered exposition.
fn sample(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

#[test]
fn durable_cluster_serves_live_stats_with_nonzero_histograms() {
    let base = tmp_base("live");
    let cluster = Cluster::launch_durable(3, Config::default(), &base).expect("launch");

    // Real load first: committed writes (through the WAL and around the
    // ring) and reads, so every instrumented path has fired.
    let mut client = Client::connect(1, cluster.addrs()).expect("client");
    client.set_timeout(Duration::from_millis(500));
    for i in 0..20u64 {
        client.write(Value::from_u64(i + 1)).expect("write");
    }
    for _ in 0..5 {
        let got = client.read().expect("read");
        assert!(!got.as_bytes().is_empty());
    }

    // Every server answers; the exposition is one shared registry.
    let text = cluster.stats(ServerId(0)).expect("stats from s0");
    for s in 1..3u16 {
        cluster.stats(ServerId(s)).expect("stats from each server");
    }
    // A client can probe through its own connection too.
    let via_client = client.stats(ServerId(1)).expect("client stats");

    if cfg!(feature = "metrics") {
        // Ring batching: the writer records every outbound batch.
        let batches = sample(&text, "hts_net_ring_batch_frames_count").unwrap_or(0);
        assert!(batches > 0, "no ring batches recorded:\n{text}");
        // Durability: SyncAlways fsyncs on the commit path.
        let fsyncs = sample(&text, "hts_wal_fsync_nanos_count").unwrap_or(0);
        assert!(fsyncs > 0, "no WAL fsyncs recorded:\n{text}");
        // Per-phase op latency: pre-write and commit halves plus totals.
        for hist in [
            "hts_core_write_prewrite_nanos_count",
            "hts_core_write_commit_nanos_count",
            "hts_core_write_total_nanos_count",
        ] {
            let n = sample(&text, hist).unwrap_or(0);
            assert!(n > 0, "{hist} is empty:\n{text}");
        }
        assert!(via_client.contains("hts_net_ring_batch_frames_count"));
    } else {
        // Metrics off: the endpoint still answers, with an empty registry.
        assert!(text.is_empty());
        assert!(via_client.is_empty());
    }

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn stats_probe_fails_cleanly_against_a_crashed_server() {
    let base = tmp_base("crashed");
    let mut cluster = Cluster::launch_durable(3, Config::default(), &base).expect("launch");
    cluster.crash(ServerId(2)).expect("crash");
    // The endpoint must surface an error, not hang or panic.
    cluster
        .stats(ServerId(2))
        .expect_err("stats against a crashed server");
    // The surviving servers still answer.
    cluster.stats(ServerId(0)).expect("stats from s0");
    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}
