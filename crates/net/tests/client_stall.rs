//! Regression tests for the client stall bugs: an unbounded TCP connect
//! against a SYN-blackholed server, and a stale-reply burst extending one
//! attempt past its deadline. Both must cost at most the per-attempt
//! budget, then rotate — the retry loop's liveness depends on attempts
//! actually ending on time.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use hts_net::Client;
use hts_types::{codec, Message, ObjectId, RequestId, Value};

#[test]
fn connect_against_a_blackholed_server_times_out_per_attempt() {
    // A listener that never accepts, with its accept backlog pre-filled:
    // further SYNs are dropped, so a plain `TcpStream::connect` hangs
    // for the OS connect timeout (minutes). The client must instead
    // spend at most its per-attempt budget and move on.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mut backlog_fillers = Vec::new();
    let mut saturated = false;
    for _ in 0..1024 {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(300)) {
            Ok(s) => backlog_fillers.push(s),
            Err(_) => {
                saturated = true;
                break;
            }
        }
    }
    if !saturated {
        // Exotic kernel settings (huge somaxconn / abort-on-overflow)
        // defeat the blackhole setup; nothing to assert then.
        eprintln!("skipping: could not saturate the accept backlog");
        return;
    }

    let mut client = Client::connect(77, vec![addr]).expect("lazy connect");
    client.set_timeout(Duration::from_millis(150));
    let start = Instant::now();
    let err = client
        .write(Value::from_u64(1))
        .expect_err("no server ever answers");
    let elapsed = start.elapsed();
    // A full retry cycle is 8 attempts; with the 150 ms per-attempt
    // connect budget that is ~1.2 s plus slack. The pre-fix behaviour
    // (kernel SYN retries) is north of a minute for the FIRST attempt.
    assert!(
        elapsed < Duration::from_secs(20),
        "client stalled {elapsed:?} against a blackholed server: {err}"
    );
    drop(backlog_fillers);
}

/// A fake server that accepts every client connection and floods it with
/// stale replies (acks for a request id the client never issued) until
/// the connection drops.
fn spawn_stale_reply_spammer() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || {
        while let Ok((mut stream, _)) = listener.accept() {
            std::thread::spawn(move || {
                // Consume the 5-byte client hello, then ignore requests.
                let mut hello = [0u8; 5];
                if stream.read_exact(&mut hello).is_err() {
                    return;
                }
                let stale = Message::WriteAck {
                    object: ObjectId::SINGLE,
                    request: RequestId(u64::MAX), // never issued
                };
                let body = codec::encode(&stale);
                let mut wire = Vec::with_capacity(4 + body.len());
                wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
                wire.extend_from_slice(&body);
                // Spam fast enough that each stale reply lands well
                // within any per-read timeout: with the old
                // reset-per-reply logic one attempt would never end.
                loop {
                    if stream.write_all(&wire).is_err() {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
    });
    addr
}

#[test]
fn stale_reply_burst_cannot_extend_an_attempt_past_its_deadline() {
    let addr = spawn_stale_reply_spammer();
    let mut client = Client::connect(78, vec![addr]).expect("lazy connect");
    client.set_timeout(Duration::from_millis(200));
    let start = Instant::now();
    let err = client
        .read()
        .expect_err("the spammer never sends a real reply");
    let elapsed = start.elapsed();
    // 8 attempts x 200 ms ≈ 1.6 s plus reconnect slack. Before the fix,
    // every stale reply reset the read timeout, so the attempt lasted as
    // long as the spam kept flowing — unbounded.
    assert!(
        elapsed < Duration::from_secs(15),
        "stale replies extended the attempt to {elapsed:?}: {err}"
    );
}
