//! Pins the zero-copy path's allocation profile with a counting global
//! allocator:
//!
//! * [`codec::decode_shared`] performs **zero** heap allocations — every
//!   decoded `Value` is a refcounted view of the input buffer;
//! * a steady-state [`MessageReader`] loop over value-free messages
//!   costs at most one small allocation per message (the shared
//!   buffer's refcount block, reclaimed again by the recycler) — never
//!   anything proportional to message size;
//! * the seqlock [`ReadCell`] fast path answers reads with zero
//!   allocations per op;
//! * the copying baseline (`read_message_copied`) allocates strictly
//!   more than the zero-copy reader on value-bearing traffic.
//!
//! Everything runs in one `#[test]` so no parallel test thread pollutes
//! the counts (this file is its own test binary, so the allocator hook
//! is scoped to exactly these assertions).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hts_core::ReadCell;
use hts_net::{read_message_copied, MessageReader};
use hts_types::{codec, Message, ObjectId, RequestId, ServerId, Tag, Value};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is the only
// addition and touches no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

fn write_req(len: usize) -> Message {
    Message::WriteReq {
        object: ObjectId(1),
        request: RequestId(2),
        value: Value::filled(9, len),
    }
}

#[test]
fn steady_state_allocation_profile() {
    // --- decode_shared: zero allocations, even for a 64 KiB value. ---
    let msg = write_req(64 * 1024);
    let encoded = codec::encode(&msg);
    let (allocs, decoded) = allocs_during(|| codec::decode_shared(&encoded).expect("decode"));
    assert_eq!(decoded, msg);
    assert_eq!(
        allocs, 0,
        "decode_shared must not allocate: values are views of the input"
    );
    // The copying decode pays for the same message.
    let (copying_allocs, _) = allocs_during(|| codec::decode(&encoded).expect("decode"));
    assert!(
        copying_allocs >= 1,
        "expected the copying decode to allocate, counted {copying_allocs}"
    );
    drop(decoded);

    // --- MessageReader: ≤ 1 small allocation per value-free message. ---
    let ack = Message::WriteAck {
        object: ObjectId(1),
        request: RequestId(2),
    };
    let mut buf = Vec::new();
    for _ in 0..64 {
        hts_net::write_message(&mut buf, &ack).expect("frame");
    }
    let mut reader = MessageReader::new();
    let mut cursor = &buf[..];
    for _ in 0..8 {
        assert_eq!(reader.read(&mut cursor).expect("warm-up"), ack);
    }
    let (allocs, ()) = allocs_during(|| {
        for _ in 0..56 {
            assert_eq!(reader.read(&mut cursor).expect("read"), ack);
        }
    });
    assert!(
        allocs <= 56,
        "steady-state value-free reads must cost at most one allocation \
         per message (the refcount block); counted {allocs} over 56 reads"
    );

    // --- ReadCell fast path: zero allocations per read. ---
    let cell = ReadCell::new();
    cell.publish(
        Tag::new(7, ServerId(1)),
        &Value::filled(3, 64 * 1024),
        false,
    );
    let (allocs, ()) = allocs_during(|| {
        for _ in 0..1_000 {
            let (tag, value) = cell.try_read().expect("unblocked cell answers");
            assert_eq!(tag.ts, 7);
            assert_eq!(value.len(), 64 * 1024);
        }
    });
    assert_eq!(
        allocs, 0,
        "the seqlock read path must be allocation-free: the value clone \
         is a refcount bump"
    );

    // --- Value-bearing wire reads: zero-copy < copying, per message. ---
    let msg = write_req(64 * 1024);
    let mut buf = Vec::new();
    for _ in 0..8 {
        hts_net::write_message(&mut buf, &msg).expect("frame");
    }
    let mut reader = MessageReader::new();
    let mut cursor = &buf[..];
    let (zero_copy_allocs, ()) = allocs_during(|| {
        for _ in 0..8 {
            assert_eq!(reader.read(&mut cursor).expect("read"), msg);
        }
    });
    let mut cursor = &buf[..];
    let (copied_allocs, ()) = allocs_during(|| {
        for _ in 0..8 {
            assert_eq!(read_message_copied(&mut cursor).expect("read"), msg);
        }
    });
    assert!(
        zero_copy_allocs < copied_allocs,
        "zero-copy reads ({zero_copy_allocs} allocs) must beat the \
         copying baseline ({copied_allocs} allocs) on value-bearing traffic"
    );
}
