//! Crash-**recovery** over real TCP: kill a server, restart it from its
//! WAL directory, watch it rejoin the ring and serve again — with the
//! full client history checked for atomicity.

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hts_core::Config;
use hts_lincheck::{check_conditions, check_exhaustive_bounded, History, Outcome};
use hts_net::{Client, Cluster};
use hts_types::{ClientId, ServerId, Value};

fn tmp_base(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hts-net-restart-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Wall-clock nanos since `epoch` (history timestamps).
fn nanos_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

#[test]
fn kill_restart_rejoin_serves_pre_and_post_crash_data() {
    let base = tmp_base("rejoin");
    let mut cluster = Cluster::launch_durable(3, Config::default(), &base).expect("launch");
    let addrs = cluster.addrs();
    let epoch = Instant::now();
    let mut history = History::new();

    let mut writer = Client::connect(1, addrs.clone()).expect("writer");
    writer.set_timeout(Duration::from_millis(300));
    for i in 1..=5u64 {
        let value = Value::from_u64(i);
        let op = history.invoke_write(ClientId(1), value.clone(), nanos_since(epoch));
        writer.write(value).expect("pre-crash write");
        history.complete_write(op, nanos_since(epoch));
    }

    // Kill s1 and let the ring splice it out.
    cluster.crash(ServerId(1)).expect("crash");
    std::thread::sleep(Duration::from_millis(200));

    // This write commits while s1 is down — its log cannot contain it.
    let missed = Value::from_u64(6);
    let op = history.invoke_write(ClientId(1), missed.clone(), nanos_since(epoch));
    writer.write(missed).expect("write during downtime");
    history.complete_write(op, nanos_since(epoch));

    // Restart s1 from its WAL; give it time to replay, announce and resync.
    cluster.restart(ServerId(1)).expect("restart");
    std::thread::sleep(Duration::from_millis(500));
    assert_eq!(cluster.alive(), 3);

    // Read *through the restarted server*: it must serve the write it
    // missed (learned from its predecessor's recovery stream), not its
    // stale log state.
    let mut reader =
        Client::connect_preferring(100, addrs.clone(), ServerId(1)).expect("reader at s1");
    reader.set_timeout(Duration::from_millis(500));
    let op = history.invoke_read(ClientId(100), nanos_since(epoch));
    let got = reader.read().expect("read through restarted server");
    history.complete_read(op, got.clone(), nanos_since(epoch));
    assert_eq!(
        got,
        Value::from_u64(6),
        "restarted server served stale data"
    );

    // The rejoined server also coordinates fresh writes.
    let mut rejoined_writer =
        Client::connect_preferring(101, addrs.clone(), ServerId(1)).expect("writer at s1");
    rejoined_writer.set_timeout(Duration::from_millis(500));
    let v7 = Value::from_u64(7);
    let op = history.invoke_write(ClientId(101), v7.clone(), nanos_since(epoch));
    rejoined_writer
        .write(v7)
        .expect("write through restarted server");
    history.complete_write(op, nanos_since(epoch));

    // Kill everyone else: the restarted server alone must still hold the
    // full state (durability + resync, end to end).
    cluster.crash(ServerId(0)).expect("crash");
    cluster.crash(ServerId(2)).expect("crash");
    std::thread::sleep(Duration::from_millis(200));
    let op = history.invoke_read(ClientId(100), nanos_since(epoch));
    let got = reader.read().expect("read from lone restarted survivor");
    history.complete_read(op, got.clone(), nanos_since(epoch));
    assert_eq!(got, Value::from_u64(7));

    let violations = check_conditions(&history);
    assert!(
        violations.is_empty(),
        "atomicity violations: {violations:?}\n{history}"
    );
    assert!(
        matches!(
            check_exhaustive_bounded(&history, 5_000_000),
            Outcome::Linearizable | Outcome::Unknown
        ),
        "exhaustive checker rejected the history\n{history}"
    );

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn concurrent_load_through_kill_restart_stays_atomic() {
    let base = tmp_base("load");
    let mut cluster = Cluster::launch_durable(3, Config::default(), &base).expect("launch");
    let addrs = cluster.addrs();
    let epoch = Instant::now();
    let history = Arc::new(Mutex::new(History::new()));

    let mut workers = Vec::new();
    for t in 0..3u32 {
        let addrs = addrs.clone();
        let history = Arc::clone(&history);
        workers.push(std::thread::spawn(move || {
            let preferred = ServerId(t as u16 % 3);
            let mut client = Client::connect_preferring(10 + t, addrs, preferred).expect("client");
            client.set_timeout(Duration::from_millis(300));
            for i in 0..12u64 {
                let id = ClientId(10 + t);
                if i % 3 == 2 {
                    let op = {
                        let mut h = history.lock().unwrap();
                        h.invoke_read(id, nanos_since(epoch))
                    };
                    let got = client.read().expect("read");
                    let mut h = history.lock().unwrap();
                    h.complete_read(op, got, nanos_since(epoch));
                } else {
                    // Unique values let the condition checker map reads
                    // to writes.
                    let value = Value::from_u64(u64::from(t) * 1_000 + i + 1);
                    let op = {
                        let mut h = history.lock().unwrap();
                        h.invoke_write(id, value.clone(), nanos_since(epoch))
                    };
                    client.write(value).expect("write");
                    let mut h = history.lock().unwrap();
                    h.complete_write(op, nanos_since(epoch));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }));
    }

    // Bounce s2 while the workers hammer the ring.
    std::thread::sleep(Duration::from_millis(60));
    cluster.crash(ServerId(2)).expect("crash");
    std::thread::sleep(Duration::from_millis(150));
    cluster.restart(ServerId(2)).expect("restart");

    for worker in workers {
        worker.join().expect("worker");
    }
    assert_eq!(cluster.alive(), 3);

    let history = history.lock().unwrap();
    let violations = check_conditions(&history);
    assert!(
        violations.is_empty(),
        "atomicity violations across kill+restart: {violations:?}\n{history}"
    );

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn cold_restart_of_the_whole_cluster_recovers_all_data() {
    let base = tmp_base("cold");
    {
        let cluster = Cluster::launch_durable(2, Config::default(), &base).expect("launch");
        let mut client = Client::connect(1, cluster.addrs()).expect("client");
        client.set_timeout(Duration::from_millis(300));
        client.write(Value::from_u64(99)).expect("write");
        cluster.shutdown(); // whole-cluster power-off
    }
    // A brand-new cluster over the same WAL base: every server boots in
    // restart mode, they resync against each other and serve the data.
    let cluster = Cluster::launch_durable(2, Config::default(), &base).expect("relaunch");
    let mut client = Client::connect(2, cluster.addrs()).expect("client");
    client.set_timeout(Duration::from_millis(500));
    assert_eq!(client.read().expect("read"), Value::from_u64(99));
    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn volatile_cluster_rejects_restart() {
    let mut cluster = Cluster::launch(2).expect("launch");
    cluster.crash(ServerId(0)).expect("crash");
    let err = cluster
        .restart(ServerId(0))
        .expect_err("restart without durability must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    // Crashing twice (or out of range) reports the mistake too.
    assert_eq!(
        cluster.crash(ServerId(0)).expect_err("double crash").kind(),
        std::io::ErrorKind::NotFound
    );
    assert!(cluster.crash(ServerId(9)).is_err());
    cluster.shutdown();
}

#[test]
fn stale_parked_connection_is_retried_not_declared_a_crash() {
    // n=4 ring 0→1→2→3. When s1 bounces, s0 parks its connection to s2.
    // s2 then bounces too — s0 is non-adjacent and never observes it, so
    // the parked entry silently goes stale. When s1 later dies for good
    // and s0 re-splices to s2, the first write rides the dead socket:
    // the event loop must retry over a fresh connection instead of
    // declaring the live, rejoined s2 crashed (which would wedge the
    // ring and serve stale reads forever).
    let base = tmp_base("stale-park");
    let mut cluster = Cluster::launch_durable(4, Config::default(), &base).expect("launch");
    let addrs = cluster.addrs();
    let mut client = Client::connect(1, addrs.clone()).expect("client");
    client.set_timeout(Duration::from_millis(300));
    client.write(Value::from_u64(1)).expect("write v1");

    // s1 bounces: s0 parks its (live) connection to s2.
    cluster.crash(ServerId(1)).expect("crash");
    std::thread::sleep(Duration::from_millis(200));
    client
        .write(Value::from_u64(2))
        .expect("write during s1 downtime");
    cluster.restart(ServerId(1)).expect("restart s1");
    std::thread::sleep(Duration::from_millis(400));

    // s2 bounces: s0's parked connection to it is now a corpse.
    cluster.crash(ServerId(2)).expect("crash");
    std::thread::sleep(Duration::from_millis(200));
    cluster.restart(ServerId(2)).expect("restart s2");
    std::thread::sleep(Duration::from_millis(400));

    // s1 dies for good: s0's successor becomes s2 and the stale parked
    // connection gets activated.
    cluster.crash(ServerId(1)).expect("crash");
    std::thread::sleep(Duration::from_millis(300));

    client
        .write(Value::from_u64(3))
        .expect("write across the resplice");
    // The rejoined s2 must still be in the ring and serve the latest
    // value — if s0 had falsely declared it crashed, this read (pinned
    // to s2) would return stale data or time out.
    let mut reader = Client::connect_preferring(50, addrs, ServerId(2)).expect("reader");
    reader.set_timeout(Duration::from_millis(500));
    assert_eq!(reader.read().expect("read via s2"), Value::from_u64(3));
    assert_eq!(cluster.alive(), 3);

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
}
