//! End-to-end tests of the TCP runtime on localhost.

use std::time::Duration;

use hts_net::{Client, Cluster};
use hts_types::{ObjectId, ServerId, Value};

#[test]
fn write_then_read_through_different_servers() {
    let cluster = Cluster::launch(3).expect("launch");
    let addrs = cluster.addrs();

    let mut writer = Client::connect(1, addrs.clone()).expect("writer");
    writer.write(Value::from_u64(7)).expect("write");

    // Read through each server: all must return the committed value.
    for (i, _) in addrs.iter().enumerate() {
        let mut reader = Client::connect(100 + i as u32, addrs.clone()).expect("reader");
        // Point the reader at server i by rotating the address list? No —
        // ClientCore prefers ServerId(0); instead verify via repeated
        // reads through the default path plus one rotated client below.
        let got = reader.read().expect("read");
        assert_eq!(got, Value::from_u64(7), "reader {i}");
    }
    cluster.shutdown();
}

#[test]
fn multiple_objects_are_independent() {
    let cluster = Cluster::launch(2).expect("launch");
    let mut client = Client::connect(1, cluster.addrs()).expect("client");
    client
        .write_to(ObjectId(1), Value::from_u64(11))
        .expect("write obj1");
    client
        .write_to(ObjectId(2), Value::from_u64(22))
        .expect("write obj2");
    assert_eq!(
        client.read_from(ObjectId(1)).expect("read obj1"),
        Value::from_u64(11)
    );
    assert_eq!(
        client.read_from(ObjectId(2)).expect("read obj2"),
        Value::from_u64(22)
    );
    assert_eq!(
        client.read_from(ObjectId(9)).expect("read obj9"),
        Value::bottom()
    );
    cluster.shutdown();
}

#[test]
fn sequential_writes_converge() {
    let cluster = Cluster::launch(3).expect("launch");
    let mut client = Client::connect(1, cluster.addrs()).expect("client");
    for i in 1..=20u64 {
        client.write(Value::from_u64(i)).expect("write");
    }
    assert_eq!(client.read().expect("read"), Value::from_u64(20));
    cluster.shutdown();
}

#[test]
fn survives_server_crash_with_client_retry() {
    let mut cluster = Cluster::launch(3).expect("launch");
    let mut client = Client::connect(1, cluster.addrs()).expect("client");
    client.set_timeout(Duration::from_millis(300));
    client.write(Value::from_u64(1)).expect("write before");

    // Kill the server the client prefers (s0): retries must carry on.
    cluster.crash(ServerId(0)).expect("crash");
    std::thread::sleep(Duration::from_millis(100)); // let the ring splice

    client.write(Value::from_u64(2)).expect("write after crash");
    assert_eq!(client.read().expect("read"), Value::from_u64(2));
    assert_eq!(cluster.alive(), 2);
    cluster.shutdown();
}

#[test]
fn single_server_cluster_works() {
    let cluster = Cluster::launch(1).expect("launch");
    let mut client = Client::connect(1, cluster.addrs()).expect("client");
    client.write(Value::from_u64(5)).expect("write");
    assert_eq!(client.read().expect("read"), Value::from_u64(5));
    cluster.shutdown();
}

#[test]
fn concurrent_clients_from_threads() {
    let cluster = Cluster::launch(3).expect("launch");
    let addrs = cluster.addrs();
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let addrs = addrs.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(10 + t, addrs).expect("client");
            for i in 0..10u64 {
                client
                    .write(Value::from_u64(u64::from(t) * 1000 + i))
                    .expect("write");
                let _ = client.read().expect("read");
            }
        }));
    }
    for h in handles {
        h.join().expect("thread");
    }
    cluster.shutdown();
}
