//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The rules in [`crate::rules`] operate on a token stream with comments
//! and string/char literal *contents* stripped: a `panic!` inside a doc
//! comment or an error message must never count as a violation. The lexer
//! therefore distinguishes exactly three code token kinds — identifiers
//! (keywords included), literals, and single-character punctuation — and
//! returns comments separately with their line spans (rule L5 and the
//! `// lint: allow(...)` suppressions need them).
//!
//! It is *not* a full Rust lexer: numeric literals are folded greedily,
//! and token text is borrowed straight from the source. That is enough
//! to track brace/paren nesting, `#[cfg(test)]` scopes and the specific
//! call shapes the rules look for.

/// What kind of code token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `match`, `unsafe`, `_`, ...).
    Ident,
    /// String/char/numeric literal (contents not preserved for strings).
    Literal,
    /// One punctuation character (`.`, `!`, `{`, `:`, ...).
    Punct,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok<'a> {
    /// Token kind.
    pub kind: TokKind,
    /// Source text (`"\"str\""` literals are collapsed to `""`).
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok<'_> {
    /// Is this punctuation `c`?
    pub fn is(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// Is this the identifier/keyword `word`?
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }
}

/// A comment with its line span and raw text (`//`/`/* */` markers kept).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// The raw comment text.
    pub text: String,
}

/// The lexer's output: code tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// Code tokens.
    pub toks: Vec<Tok<'a>>,
    /// Comments (doc comments included).
    pub comments: Vec<Comment>,
}

/// Lexes `src`, stripping comments and literal contents.
pub fn lex(src: &str) -> Lexed<'_> {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                // The token carries the line it *starts* on; skip_* bumps
                // `line` past any newlines inside the literal.
                let start_line = line;
                i = skip_string(bytes, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"\"",
                    line: start_line,
                });
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let start_line = line;
                i = skip_raw_string(bytes, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"\"",
                    line: start_line,
                });
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let start_line = line;
                i = skip_string(bytes, i + 1, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"\"",
                    line: start_line,
                });
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                let start_line = line;
                i = skip_char(bytes, i + 1, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "''",
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let after = bytes.get(i + 1).copied().unwrap_or(0);
                let is_lifetime = (after.is_ascii_alphabetic() || after == b'_')
                    && bytes.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    i += 1;
                    let start = i;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: &src[start..i],
                        line,
                    });
                } else {
                    let start_line = line;
                    i = skip_char(bytes, i, &mut line);
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: "''",
                        line: start_line,
                    });
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' || !c.is_ascii() => {
                let start = i;
                // A raw identifier (`r#match`) is one token whose text
                // keeps the `r#` prefix — splitting it into `r`, `#`,
                // `match` would hand the rules a phantom keyword.
                if c == b'r'
                    && bytes.get(i + 1) == Some(&b'#')
                    && bytes
                        .get(i + 2)
                        .is_some_and(|&b| b.is_ascii_alphabetic() || b == b'_')
                {
                    i += 2;
                }
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: &src[start..i],
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (is_ident_byte(bytes[i])
                        || (bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)))
                {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: &src[start..i],
                    line,
                });
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: &src[i..i + 1],
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || !b.is_ascii()
}

/// Does a raw (byte) string literal start at `i` (`r"`, `r#"`, `br"`, ...)?
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) != Some(&b'r') {
            return false;
        }
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Skips a `"..."` string starting at the opening quote; returns the index
/// past the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // An escaped byte may itself be a newline (line
                // continuation) — it is still a source line.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string starting at `r`/`b`; returns the index past the
/// closing quote + hashes.
fn skip_raw_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // 'r'
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Skips a `'.'` char literal starting at the opening quote.
fn skip_char(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.to_string())
            .collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let src = r#"
            // a panic! in a comment
            /* and unwrap() in /* a nested */ block */
            fn f() { let s = "panic!(\"quoted\")"; }
        "#;
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f", "let", "s"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("panic! in a comment"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = r##"let a = r#"unwrap()"#; let b = 'x'; let c: &'static str = b"z";"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c", "str"]);
    }

    #[test]
    fn lines_are_tracked() {
        let src = "fn a() {}\nfn b() {}\n";
        let lexed = lex(src);
        let b = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn multi_line_literals_carry_their_start_line() {
        // The literal token anchors where it *opens*; lines inside it
        // still count toward what follows.
        let src = "let a = \"one\ntwo\";\nlet b = r#\"three\nfour\"#;\nlet c = 1;";
        let lexed = lex(src);
        let lits: Vec<u32> = lexed
            .toks
            .iter()
            .filter(|t| t.text == "\"\"")
            .map(|t| t.line)
            .collect();
        assert_eq!(lits, vec![1, 3]);
        let c = lexed.toks.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c.line, 5);
    }

    #[test]
    fn escaped_newline_in_a_string_still_counts_as_a_line() {
        // `\` + newline is a string continuation, but the newline is a
        // real source line — without counting it every later token
        // drifts one line up.
        let src = "let a = \"one\\\ntwo\";\nlet b = 1;";
        let b = lex(src).toks.into_iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn raw_identifiers_are_single_tokens() {
        let src = "fn r#match(r#unsafe: u32) {}";
        let lexed = lex(src);
        assert!(lexed.toks.iter().any(|t| t.is_ident("r#match")));
        // No phantom keywords, no stray `#` punctuation.
        assert!(!lexed.toks.iter().any(|t| t.is_ident("match")));
        assert!(!lexed.toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(!lexed.toks.iter().any(|t| t.is('#')));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // The brace structure survives (a mis-lexed lifetime would swallow
        // the rest of the file as a char literal).
        let braces = lex(src).toks.iter().filter(|t| t.is('{')).count();
        assert_eq!(braces, 1);
    }
}
