//! The `lint-baseline.toml` ratchet.
//!
//! Existing debt is enumerated as per-(rule, file) violation **counts**
//! and frozen: a file whose count for a rule exceeds its baseline fails
//! the check, a file below baseline just notes that the ratchet can be
//! tightened (`--update-baseline` rewrites the file from the current
//! state). Counts — not line numbers — keep the ratchet stable across
//! unrelated edits to the same file.
//!
//! The format is a minimal TOML subset written and parsed here (the
//! analyzer is dependency-free):
//!
//! ```toml
//! version = 1
//!
//! [L1]
//! "crates/core/src/client.rs" = 12
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{Rule, Violation};

/// Baselined violation counts per rule and file.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// (rule, file) → allowed count.
    pub counts: BTreeMap<(Rule, String), usize>,
}

impl Baseline {
    /// Builds a baseline freezing exactly the given violations.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut counts = BTreeMap::new();
        for v in violations {
            *counts.entry((v.rule, v.file.clone())).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// The allowed count for (rule, file); zero when absent.
    pub fn allowed(&self, rule: Rule, file: &str) -> usize {
        self.counts
            .get(&(rule, file.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Total baselined sites for one rule.
    pub fn total(&self, rule: Rule) -> usize {
        self.counts
            .iter()
            .filter(|((r, _), _)| *r == rule)
            .map(|(_, n)| n)
            .sum()
    }

    /// Serializes to the baseline file format.
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# hts-check lint baseline: frozen per-file violation counts.\n\
             # Regenerate with `cargo run -p hts-check -- --update-baseline`;\n\
             # the ratchet only ever tightens — fix debt, rerun, commit.\n\
             version = 1\n",
        );
        for rule in Rule::ALL {
            let entries: Vec<_> = self
                .counts
                .iter()
                .filter(|((r, _), n)| *r == rule && **n > 0)
                .collect();
            if entries.is_empty() {
                continue;
            }
            let _ = write!(out, "\n[{rule}]\n");
            for ((_, file), n) in entries {
                let _ = writeln!(out, "\"{file}\" = {n}");
            }
        }
        out
    }

    /// Parses the baseline file format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        let mut section: Option<Rule> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = Some(
                    Rule::parse(name)
                        .ok_or_else(|| format!("line {}: unknown rule [{name}]", idx + 1))?,
                );
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", idx + 1))?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            if key == "version" {
                if value != "1" {
                    return Err(format!("unsupported baseline version {value}"));
                }
                continue;
            }
            let rule =
                section.ok_or_else(|| format!("line {}: entry before any [rule]", idx + 1))?;
            let n: usize = value
                .parse()
                .map_err(|_| format!("line {}: bad count {value:?}", idx + 1))?;
            counts.insert((rule, key.to_string()), n);
        }
        Ok(Baseline { counts })
    }
}

/// The verdict of diffing current violations against a baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// Violations in (rule, file) groups that exceed their baseline —
    /// every site in the offending group, since the linter cannot know
    /// which one is new.
    pub regressions: Vec<Violation>,
    /// (rule, file, baseline, actual) groups now below baseline: the
    /// ratchet can tighten.
    pub improvements: Vec<(Rule, String, usize, usize)>,
}

/// Diffs `violations` against `baseline`.
pub fn diff(violations: &[Violation], baseline: &Baseline) -> Diff {
    let mut actual: BTreeMap<(Rule, String), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        actual.entry((v.rule, v.file.clone())).or_default().push(v);
    }
    let mut out = Diff::default();
    for ((rule, file), group) in &actual {
        let allowed = baseline.allowed(*rule, file);
        if group.len() > allowed {
            out.regressions.extend(group.iter().map(|v| (*v).clone()));
        }
    }
    for ((rule, file), allowed) in &baseline.counts {
        let have = actual.get(&(*rule, file.clone())).map_or(0, Vec::len);
        if have < *allowed {
            out.improvements.push((*rule, file.clone(), *allowed, have));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: Rule, file: &str, line: u32) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            what: "x".to_string(),
        }
    }

    #[test]
    fn roundtrips_through_toml() {
        let base = Baseline::from_violations(&[
            v(Rule::L1, "a.rs", 1),
            v(Rule::L1, "a.rs", 2),
            v(Rule::L4, "b.rs", 9),
        ]);
        let text = base.to_toml();
        assert_eq!(Baseline::parse(&text).unwrap(), base);
        assert_eq!(base.total(Rule::L1), 2);
    }

    #[test]
    fn diff_finds_regressions_and_improvements() {
        let base = Baseline::from_violations(&[v(Rule::L1, "a.rs", 1), v(Rule::L2, "b.rs", 2)]);
        // a.rs grew one L1; b.rs fixed its L2.
        let now = [v(Rule::L1, "a.rs", 1), v(Rule::L1, "a.rs", 5)];
        let d = diff(&now, &base);
        assert_eq!(d.regressions.len(), 2); // the whole offending group
        assert_eq!(d.improvements, vec![(Rule::L2, "b.rs".to_string(), 1, 0)]);
    }

    #[test]
    fn within_baseline_is_clean() {
        let base = Baseline::from_violations(&[v(Rule::L1, "a.rs", 1), v(Rule::L1, "a.rs", 2)]);
        let now = [v(Rule::L1, "a.rs", 7)];
        let d = diff(&now, &base);
        assert!(d.regressions.is_empty());
        assert_eq!(d.improvements.len(), 1);
    }

    #[test]
    fn rejects_malformed_baselines() {
        assert!(Baseline::parse("version = 2\n").is_err());
        assert!(Baseline::parse("[L9]\n").is_err());
        assert!(Baseline::parse("\"a.rs\" = 1\n").is_err()); // entry before section
        assert!(Baseline::parse("[L1]\n\"a.rs\" = x\n").is_err());
    }
}
