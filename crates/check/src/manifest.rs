//! The `mc-models.toml` model-coverage manifest.
//!
//! Rule L7's second half: a `Relaxed` justification comment argues one
//! access site, but an atomic *protocol* (a seqlock, a ring handshake)
//! is only trustworthy if its interleavings have been explored. So every
//! protocol-crate file constructing an atomic (`Atomic*::new` outside
//! test scope) must either name the `hts-mc` model file that exercises
//! it, or carry an explicit exemption with a reason:
//!
//! ```toml
//! version = 1
//!
//! [models]
//! "crates/core/src/snapshot.rs" = "crates/mc/tests/models.rs"
//!
//! [exempt]
//! "crates/types/src/sync.rs" = "NEXT_ID is a pure id allocator"
//! ```
//!
//! The check is two-sided: an unmanifested atomic is a violation, and so
//! is a stale entry (a file that no longer constructs atomics, a model
//! file that does not exist or never references `hts_mc`). Violations
//! report as [`Rule::L7`] and ratchet through `lint-baseline.toml` like
//! any other — though the intended steady state is zero.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::lexer::{lex, TokKind};
use crate::rules::{test_mask, Rule, Violation};

/// The manifest's well-known filename at the workspace root.
pub const MANIFEST_FILE: &str = "mc-models.toml";

/// Parsed `mc-models.toml`: file → model path, file → exemption reason.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Protocol files with atomics → the hts-mc model file covering them.
    pub models: BTreeMap<String, String>,
    /// Protocol files with atomics excused from modeling, with a reason.
    pub exempt: BTreeMap<String, String>,
}

impl Manifest {
    /// Parses the manifest file format (the same minimal TOML subset as
    /// the lint baseline: `version`, `[section]`, `"key" = "value"`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut out = Manifest::default();
        let mut section: Option<bool> = None; // true = [models]
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = Some(match name {
                    "models" => true,
                    "exempt" => false,
                    other => return Err(format!("line {}: unknown section [{other}]", idx + 1)),
                });
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", idx + 1))?;
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim().trim_matches('"').to_string();
            if key == "version" {
                if value != "1" {
                    return Err(format!("unsupported manifest version {value}"));
                }
                continue;
            }
            let models =
                section.ok_or_else(|| format!("line {}: entry before any section", idx + 1))?;
            let dup = if models {
                out.models.insert(key.clone(), value).is_some()
            } else {
                out.exempt.insert(key.clone(), value).is_some()
            };
            if dup {
                return Err(format!("line {}: duplicate entry for {key:?}", idx + 1));
            }
        }
        Ok(out)
    }
}

/// Lines (1-based) of non-test `Atomic*::new(` constructor calls in `src`.
pub fn atomic_ctor_lines(src: &str) -> Vec<u32> {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let mask = test_mask(toks);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let ctor = t.kind == TokKind::Ident
            && t.text.starts_with("Atomic")
            && toks.get(i + 1).is_some_and(|n| n.is(':'))
            && toks.get(i + 2).is_some_and(|n| n.is(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("new"))
            && toks.get(i + 4).is_some_and(|n| n.is('('));
        if ctor && !mask[i] {
            out.push(t.line);
        }
    }
    out
}

/// What a named model file looks like on disk: absent, or present with /
/// without a reference to `hts_mc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFile {
    /// No such file.
    Missing,
    /// Exists but never mentions `hts_mc` — not a model of anything.
    NotAModel,
    /// Exists and references `hts_mc`.
    Model,
}

/// Diffs the manifest against the observed atomic-constructor sites.
///
/// `atomic_files` maps each workspace-relative file to its non-test
/// `Atomic*::new` lines; `look` resolves a manifest model path to what
/// is actually on disk (injected so the logic is testable in memory).
pub fn coverage_violations(
    manifest: &Manifest,
    atomic_files: &BTreeMap<String, Vec<u32>>,
    look: impl Fn(&str) -> ModelFile,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut push = |file: &str, line: u32, what: String| {
        out.push(Violation {
            rule: Rule::L7,
            file: file.to_string(),
            line,
            what,
        });
    };
    for (file, lines) in atomic_files {
        let modeled = manifest.models.contains_key(file);
        let exempted = manifest.exempt.contains_key(file);
        let line = lines.first().copied().unwrap_or(1);
        match (modeled, exempted) {
            (false, false) => push(
                file,
                line,
                format!(
                    "atomic constructor without an hts-mc model; add \"{file}\" to \
                     [models] in {MANIFEST_FILE} (or [exempt] with a reason)"
                ),
            ),
            (true, true) => push(
                file,
                line,
                format!("\"{file}\" is in both [models] and [exempt] of {MANIFEST_FILE}"),
            ),
            _ => {}
        }
    }
    for (file, model) in &manifest.models {
        if !atomic_files.contains_key(file) {
            push(
                MANIFEST_FILE,
                1,
                format!("stale [models] entry: {file} constructs no atomics (remove it)"),
            );
            continue;
        }
        match look(model) {
            ModelFile::Missing => push(
                MANIFEST_FILE,
                1,
                format!("model file {model} (for {file}) does not exist"),
            ),
            ModelFile::NotAModel => push(
                MANIFEST_FILE,
                1,
                format!("model file {model} (for {file}) never references hts_mc"),
            ),
            ModelFile::Model => {}
        }
    }
    for (file, reason) in &manifest.exempt {
        if !atomic_files.contains_key(file) {
            push(
                MANIFEST_FILE,
                1,
                format!("stale [exempt] entry: {file} constructs no atomics (remove it)"),
            );
        } else if reason.is_empty() {
            push(
                MANIFEST_FILE,
                1,
                format!("[exempt] entry for {file} needs a reason, not an empty string"),
            );
        }
    }
    out
}

/// The I/O wrapper [`crate::check_workspace`] calls: reads and parses
/// `<root>/mc-models.toml` (absent ⇒ empty manifest, so every atomic
/// site reports as unmanifested) and resolves model paths under `root`.
///
/// # Errors
///
/// A present-but-malformed manifest is an error, not a clean pass.
pub fn check_coverage(
    root: &Path,
    atomic_files: &BTreeMap<String, Vec<u32>>,
) -> io::Result<Vec<Violation>> {
    let path = root.join(MANIFEST_FILE);
    let manifest = match fs::read_to_string(&path) {
        Ok(text) => Manifest::parse(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt {}: {e}", path.display()),
            )
        })?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Manifest::default(),
        Err(e) => return Err(e),
    };
    Ok(coverage_violations(
        &manifest,
        atomic_files,
        |model| match fs::read_to_string(root.join(model)) {
            Ok(text) => {
                if text.contains("hts_mc") {
                    ModelFile::Model
                } else {
                    ModelFile::NotAModel
                }
            }
            Err(_) => ModelFile::Missing,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(entries: &[(&str, u32)]) -> BTreeMap<String, Vec<u32>> {
        let mut out: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        for (file, line) in entries {
            out.entry(file.to_string()).or_default().push(*line);
        }
        out
    }

    #[test]
    fn finds_nontest_atomic_ctors_only() {
        let src = "struct S { n: AtomicU64 }\n\
                   fn f() -> S { S { n: AtomicU64::new(0) } }\n\
                   #[cfg(test)]\nmod t { fn g() { let _ = AtomicU32::new(1); } }\n";
        assert_eq!(atomic_ctor_lines(src), vec![2]);
    }

    #[test]
    fn manifest_roundtrip_and_rejects() {
        let m = Manifest::parse(
            "version = 1\n\n[models]\n\"a.rs\" = \"m.rs\"\n\n[exempt]\n\"b.rs\" = \"why\"\n",
        )
        .unwrap();
        assert_eq!(m.models["a.rs"], "m.rs");
        assert_eq!(m.exempt["b.rs"], "why");
        assert!(Manifest::parse("version = 2\n").is_err());
        assert!(Manifest::parse("[nope]\n").is_err());
        assert!(Manifest::parse("\"a.rs\" = \"m.rs\"\n").is_err()); // before section
        assert!(Manifest::parse("[models]\n\"a\" = \"m\"\n\"a\" = \"m\"\n").is_err());
    }

    #[test]
    fn unmanifested_atomics_and_stale_entries_report() {
        let m = Manifest::parse("[models]\n\"gone.rs\" = \"m.rs\"\n\"covered.rs\" = \"m.rs\"\n")
            .unwrap();
        let vs = coverage_violations(&m, &sites(&[("covered.rs", 3), ("naked.rs", 7)]), |_| {
            ModelFile::Model
        });
        let whats: Vec<&str> = vs.iter().map(|v| v.what.as_str()).collect();
        assert_eq!(vs.len(), 2, "{whats:?}");
        assert!(whats[0].contains("naked.rs"), "{whats:?}");
        assert_eq!(vs[0].line, 7);
        assert!(
            whats[1].contains("stale [models] entry: gone.rs"),
            "{whats:?}"
        );
    }

    #[test]
    fn model_files_must_exist_and_mention_hts_mc() {
        let m = Manifest::parse("[models]\n\"a.rs\" = \"missing.rs\"\n\"b.rs\" = \"plain.rs\"\n")
            .unwrap();
        let vs = coverage_violations(&m, &sites(&[("a.rs", 1), ("b.rs", 1)]), |model| {
            if model == "plain.rs" {
                ModelFile::NotAModel
            } else {
                ModelFile::Missing
            }
        });
        assert_eq!(vs.len(), 2);
        assert!(vs[0].what.contains("does not exist"));
        assert!(vs[1].what.contains("never references hts_mc"));
    }

    #[test]
    fn exemptions_cover_but_need_substance() {
        let m =
            Manifest::parse("[exempt]\n\"a.rs\" = \"an id counter\"\n\"b.rs\" = \"\"\n").unwrap();
        let vs = coverage_violations(&m, &sites(&[("a.rs", 1), ("b.rs", 1)]), |_| {
            ModelFile::Model
        });
        assert_eq!(vs.len(), 1);
        assert!(vs[0].what.contains("needs a reason"));
    }

    #[test]
    fn double_entry_is_a_violation() {
        let m =
            Manifest::parse("[models]\n\"a.rs\" = \"m.rs\"\n[exempt]\n\"a.rs\" = \"r\"\n").unwrap();
        let vs = coverage_violations(&m, &sites(&[("a.rs", 4)]), |_| ModelFile::Model);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].what.contains("both [models] and [exempt]"));
    }
}
