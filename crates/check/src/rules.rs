//! The seven protocol-safety rules, run over one file's token stream.
//!
//! | Rule | Guards against |
//! |------|----------------|
//! | L1 `no_panic` | `unwrap`/`expect`/`panic!`/`assert!`-family in non-test protocol code — errors must propagate |
//! | L2 `no_sleep` | `thread::sleep` on event-loop / writer / client-attempt paths |
//! | L3 `guard_across_io` | a lock guard bound live across a `write`/`flush`/`sync` call in the same block |
//! | L4 `message_catch_all` | `_ =>` catch-alls in a `match` dispatching [`Message`] wire variants |
//! | L5 `unsafe_safety` | an `unsafe` block without a `// SAFETY:` comment |
//! | L6 `ring_hot_loop` | `Instant::now()` / allocation constructors inside the per-frame ring hot functions |
//! | L7 `atomic_ordering` | `Ordering::Relaxed` or a fence without a `// ordering:` comment arguing why it is sound |
//!
//! All rules skip test scope (`#[cfg(test)]` items and `#[test]` fns) and
//! honor `// lint: allow(<rule>): reason` suppressions on the violating
//! line or the line directly above.

use std::fmt;

use crate::lexer::{lex, Comment, Tok, TokKind};

/// A rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No `unwrap`/`expect`/`panic!`/`assert!` in non-test protocol code.
    L1,
    /// No `thread::sleep` in non-test protocol code.
    L2,
    /// No lock guard bound across a blocking write/flush/sync call.
    L3,
    /// No `_ =>` catch-all in a `match` over [`Message`] variants.
    L4,
    /// Every `unsafe` block carries a `// SAFETY:` comment.
    L5,
    /// No `Instant::now()` or allocation constructors in the per-frame
    /// ring hot functions.
    L6,
    /// Every `Ordering::Relaxed` and every fence carries a
    /// `// ordering:` comment (pure-counter modules excepted).
    L7,
}

impl Rule {
    /// Every rule, in order.
    pub const ALL: [Rule; 7] = [
        Rule::L1,
        Rule::L2,
        Rule::L3,
        Rule::L4,
        Rule::L5,
        Rule::L6,
        Rule::L7,
    ];

    /// The rule's short id (`"L1"`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
        }
    }

    /// The rule's long name, accepted in `lint: allow(...)` comments
    /// alongside the short id.
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "panic",
            Rule::L2 => "sleep",
            Rule::L3 => "guard_across_io",
            Rule::L4 => "message_catch_all",
            Rule::L5 => "unsafe_safety",
            Rule::L6 => "ring_hot_loop",
            Rule::L7 => "atomic_ordering",
        }
    }

    /// Parses a rule id or name (case-insensitive).
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim().to_ascii_lowercase();
        Rule::ALL
            .into_iter()
            .find(|r| s == r.id().to_ascii_lowercase() || s == r.name())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub what: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.what
        )
    }
}

/// Lints one file; `file` is the workspace-relative path used in reports.
pub fn check_file(file: &str, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let test = test_mask(toks);
    let allows = allow_lines(&lexed.comments);
    let mut out = Vec::new();
    rule_l1(file, toks, &mut out);
    rule_l2(file, toks, &mut out);
    rule_l3(file, toks, &mut out);
    rule_l4(file, toks, &mut out);
    rule_l5(file, toks, &lexed.comments, &mut out);
    rule_l6(file, toks, &mut out);
    rule_l7(file, toks, &lexed.comments, &mut out);
    out.retain(|v| {
        let tested = tok_in_test(toks, &test, v.line);
        let allowed = allows
            .iter()
            .any(|(line, rule)| *rule == v.rule && (*line == v.line || *line + 1 == v.line));
        !tested && !allowed
    });
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// Is any token on `line` inside test scope? (Violations carry lines, not
/// token indices; a line is test scope if its tokens are.)
fn tok_in_test(toks: &[Tok<'_>], mask: &[bool], line: u32) -> bool {
    toks.iter()
        .zip(mask)
        .any(|(t, in_test)| t.line == line && *in_test)
}

/// Marks every token covered by a `#[cfg(test)]`/`#[test]` item.
pub(crate) fn test_mask(toks: &[Tok<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is('#') && toks.get(i + 1).is_some_and(|t| t.is('['))) {
            i += 1;
            continue;
        }
        // One or more attributes: remember whether any is test-flavored.
        let mut any_test = false;
        let mut j = i;
        while toks.get(j).is_some_and(|t| t.is('#')) && toks.get(j + 1).is_some_and(|t| t.is('[')) {
            let close = match matching(toks, j + 1, '[', ']') {
                Some(c) => c,
                None => return mask,
            };
            any_test |= toks[j + 1..close].iter().any(|t| t.is_ident("test"));
            j = close + 1;
        }
        if !any_test {
            i = j;
            continue;
        }
        // The attributed item: everything to its opening `{` (or a `;`
        // for braceless items) and through the matching `}` is test scope.
        let mut k = j;
        let mut depth_paren = 0i32;
        let mut open = None;
        while let Some(t) = toks.get(k) {
            if t.is('(') || t.is('[') || t.is('<') {
                depth_paren += 1;
            } else if t.is(')') || t.is(']') || t.is('>') {
                depth_paren -= 1;
            } else if depth_paren <= 0 && t.is('{') {
                open = Some(k);
                break;
            } else if depth_paren <= 0 && t.is(';') {
                break;
            }
            k += 1;
        }
        let Some(open) = open else {
            i = j;
            continue;
        };
        let close = matching(toks, open, '{', '}').unwrap_or(toks.len() - 1);
        for m in mask.iter_mut().take(close + 1).skip(i) {
            *m = true;
        }
        i = close + 1;
    }
    mask
}

/// Index of the token closing the bracket opened at `open`.
fn matching(toks: &[Tok<'_>], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is(open_c) {
            depth += 1;
        } else if t.is(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Extracts `lint: allow(<rule>)` suppressions: (comment line, rule).
/// A suppression covers its own line and the line directly below.
fn allow_lines(comments: &[Comment]) -> Vec<(u32, Rule)> {
    let mut out = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("lint: allow(") else {
            continue;
        };
        let rest = &c.text[pos + "lint: allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        for name in rest[..end].split(',') {
            if let Some(rule) = Rule::parse(name) {
                out.push((c.end_line, rule));
            }
        }
    }
    out
}

/// Method names that panic instead of propagating.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
/// Macros that panic (the `assert!` family included; `debug_assert!` is
/// exempt — it compiles out of release builds).
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

fn rule_l1(file: &str, toks: &[Tok<'_>], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        let next = toks.get(i + 1);
        let is_method_call = PANIC_METHODS.contains(&t.text)
            && prev.is_some_and(|p| p.is('.'))
            && next.is_some_and(|n| n.is('('));
        let is_macro = PANIC_MACROS.contains(&t.text) && next.is_some_and(|n| n.is('!'));
        if is_method_call {
            out.push(Violation {
                rule: Rule::L1,
                file: file.to_string(),
                line: t.line,
                what: format!(".{}() panics; propagate the error instead", t.text),
            });
        } else if is_macro {
            out.push(Violation {
                rule: Rule::L1,
                file: file.to_string(),
                line: t.line,
                what: format!("{}! panics; propagate the error instead", t.text),
            });
        }
    }
}

fn rule_l2(file: &str, toks: &[Tok<'_>], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("sleep") {
            continue;
        }
        // `thread::sleep`, `std::thread::sleep`.
        let qualified = i >= 2
            && toks[i - 1].is(':')
            && toks.get(i.wrapping_sub(2)).is_some_and(|t| t.is(':'))
            && toks
                .get(i.wrapping_sub(3))
                .is_some_and(|t| t.is_ident("thread"));
        if qualified {
            out.push(Violation {
                rule: Rule::L2,
                file: file.to_string(),
                line: t.line,
                what: "thread::sleep stalls this thread; use a condvar/deadline wait".to_string(),
            });
        }
    }
}

/// Blocking calls a lock guard must not be bound across.
const BLOCKING_CALLS: [&str; 7] = [
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "fsync",
    "write_message_with",
    "write_ring_frames",
];

fn rule_l3(file: &str, toks: &[Tok<'_>], out: &mut Vec<Violation>) {
    struct Guard {
        name: String,
        depth: i32,
        line: u32,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is('{') {
            depth += 1;
        } else if t.is('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        } else if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is('('))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|n| n.is(')'))
        {
            let name = toks[i + 2].text;
            guards.retain(|g| g.name != name);
        } else if t.is_ident("let") {
            // `let [mut] NAME = ...;` — a guard if the initializer calls
            // `.lock()` / `.read()` / `.write()` on something named like a
            // lock, before the statement's `;` at this depth.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = toks.get(j).filter(|n| n.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            let mut k = j;
            let mut stmt_depth = 0i32;
            let mut is_guard = false;
            while let Some(st) = toks.get(k) {
                if st.is('{') || st.is('(') || st.is('[') {
                    stmt_depth += 1;
                } else if st.is('}') || st.is(')') || st.is(']') {
                    stmt_depth -= 1;
                } else if st.is(';') && stmt_depth == 0 {
                    break;
                } else if st.is_ident("lock")
                    && k >= 1
                    && toks[k - 1].is('.')
                    && toks.get(k + 1).is_some_and(|n| n.is('('))
                {
                    is_guard = true;
                }
                k += 1;
            }
            if is_guard {
                guards.push(Guard {
                    name: name_tok.text.to_string(),
                    depth,
                    line: name_tok.line,
                });
            }
            i = k;
            continue;
        } else if t.kind == TokKind::Ident
            && BLOCKING_CALLS.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is('('))
        {
            if let Some(g) = guards.last() {
                out.push(Violation {
                    rule: Rule::L3,
                    file: file.to_string(),
                    line: t.line,
                    what: format!(
                        "blocking call `{}` with lock guard `{}` (bound line {}) still live; \
                         drop the guard or narrow its block",
                        t.text, g.name, g.line
                    ),
                });
            }
        }
        i += 1;
    }
}

fn rule_l4(file: &str, toks: &[Tok<'_>], out: &mut Vec<Violation>) {
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("match") {
            i += 1;
            continue;
        }
        // The match body: first `{` past the scrutinee at bracket depth 0.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut body_open = None;
        while let Some(t) = toks.get(j) {
            if t.is('(') || t.is('[') {
                depth += 1;
            } else if t.is(')') || t.is(']') {
                depth -= 1;
            } else if depth == 0 && t.is('{') {
                body_open = Some(j);
                break;
            } else if depth == 0 && (t.is(';') || t.is_ident("match")) {
                break; // malformed/nested start; bail on this `match`
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i += 1;
            continue;
        };
        let Some(close) = matching(toks, open, '{', '}') else {
            i += 1;
            continue;
        };
        // Split the body into arms: pattern tokens run to the `=>` at
        // depth 0 (inside the body), the arm body to the `,` at depth 0
        // or through a braced block.
        let mut arms: Vec<(usize, usize)> = Vec::new(); // pattern [start, end) -> `=>`
        let mut k = open + 1;
        while k < close {
            let pat_start = k;
            let mut depth = 0i32;
            let mut arrow = None;
            while k < close {
                let t = &toks[k];
                if t.is('(') || t.is('[') || t.is('{') {
                    depth += 1;
                } else if t.is(')') || t.is(']') || t.is('}') {
                    depth -= 1;
                } else if depth == 0 && t.is('=') && toks.get(k + 1).is_some_and(|n| n.is('>')) {
                    arrow = Some(k);
                    break;
                }
                k += 1;
            }
            let Some(arrow) = arrow else { break };
            arms.push((pat_start, arrow));
            // Skip the arm body.
            k = arrow + 2;
            if toks.get(k).is_some_and(|t| t.is('{')) {
                k = matching(toks, k, '{', '}').map_or(close, |c| c + 1);
            } else {
                let mut depth = 0i32;
                while k < close {
                    let t = &toks[k];
                    if t.is('(') || t.is('[') || t.is('{') {
                        depth += 1;
                    } else if t.is(')') || t.is(']') || t.is('}') {
                        depth -= 1;
                    } else if depth == 0 && t.is(',') {
                        k += 1;
                        break;
                    }
                    k += 1;
                }
            }
            if toks.get(k).is_some_and(|t| t.is(',')) {
                k += 1;
            }
        }
        // A `Message` match: any arm pattern names a `Message::` variant.
        let is_message_match = arms.iter().any(|&(s, e)| {
            toks[s..e]
                .windows(3)
                .any(|w| w[0].is_ident("Message") && w[1].is(':') && w[2].is(':'))
        });
        if is_message_match {
            for &(s, e) in &arms {
                let pat: Vec<&Tok<'_>> = toks[s..e].iter().collect();
                let bare_underscore = pat.len() == 1 && pat[0].is_ident("_");
                // `Ok(_)`/`Some(_)` hide a wrapped Message; `Err(_)`
                // wraps an error and stays legal.
                let wrapped_underscore = pat.len() == 4
                    && (pat[0].is_ident("Ok") || pat[0].is_ident("Some"))
                    && pat[1].is('(')
                    && pat[2].is_ident("_")
                    && pat[3].is(')');
                if bare_underscore || wrapped_underscore {
                    out.push(Violation {
                        rule: Rule::L4,
                        file: file.to_string(),
                        line: toks[s].line,
                        what: "catch-all arm in a `Message` match; dispatch every wire \
                               variant by name"
                            .to_string(),
                    });
                }
            }
        }
        i = open + 1; // nested matches inside the body are scanned too
    }
}

fn rule_l5(file: &str, toks: &[Tok<'_>], comments: &[Comment], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // Only `unsafe { ... }` blocks; `unsafe fn`/`unsafe impl` carry
        // their obligations in their docs.
        if !toks.get(i + 1).is_some_and(|n| n.is('{')) {
            continue;
        }
        let covered = comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.end_line <= t.line && c.end_line + 2 >= t.line
        });
        if !covered {
            out.push(Violation {
                rule: Rule::L5,
                file: file.to_string(),
                line: t.line,
                what: "unsafe block without a `// SAFETY:` comment justifying it".to_string(),
            });
        }
    }
}

/// The per-frame ring hot functions: every ring frame (and with small
/// values, every committed write) passes through these on the data path,
/// so a stray `Instant::now()` syscall or heap allocation here is a
/// throughput regression, not a style nit. The metrics helpers
/// (`hts_metrics::now_nanos`, the `counter!`-family macros) are designed
/// alloc-free and are not in the flagged construct set.
const HOT_FUNCTIONS: [&str; 15] = [
    "ring_writer",
    "ring_in_loop",
    "drain_batch",
    "next_batch",
    "next_frame",
    "drain_frames",
    "drain_frames_with",
    "next_object_frame",
    "pump",
    // The zero-copy decode and the seqlock read fast path: a per-call
    // allocation here is exactly what the zero-copy PR removed.
    "decode_shared",
    "publish",
    "try_read",
    // The reactor's per-wakeup path: every readiness event (so every
    // frame, reply, and reconnect) flows through these.
    "poll_ready",
    "dispatch_event",
    "resume_write",
];

/// `Type::new()` constructors that heap-allocate.
const ALLOC_TYPES: [&str; 4] = ["Vec", "VecDeque", "String", "Box"];
/// Macros that heap-allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];
/// Allocating methods/associated fns flagged by bare name.
const ALLOC_CALLS: [&str; 2] = ["to_vec", "with_capacity"];

fn rule_l6(file: &str, toks: &[Tok<'_>], out: &mut Vec<Violation>) {
    let mut i = 0usize;
    while i < toks.len() {
        let hot = toks[i].is_ident("fn")
            && toks
                .get(i + 1)
                .is_some_and(|t| HOT_FUNCTIONS.contains(&t.text));
        if !hot {
            i += 1;
            continue;
        }
        // The body: first `{` at bracket depth 0 past the signature.
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut open = None;
        while let Some(t) = toks.get(j) {
            if t.is('(') || t.is('[') || t.is('<') {
                depth += 1;
            } else if t.is(')') || t.is(']') || t.is('>') {
                depth -= 1;
            } else if depth <= 0 && t.is('{') {
                open = Some(j);
                break;
            } else if depth <= 0 && t.is(';') {
                break; // trait method declaration: no body
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 2;
            continue;
        };
        let close = matching(toks, open, '{', '}').unwrap_or(toks.len() - 1);
        let fn_name = toks[i + 1].text;
        for k in open + 1..close {
            let t = &toks[k];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next = toks.get(k + 1);
            // `Instant::now()` — a syscall per frame.
            if t.is_ident("now")
                && k >= 3
                && toks[k - 1].is(':')
                && toks[k - 2].is(':')
                && toks[k - 3].is_ident("Instant")
                && next.is_some_and(|n| n.is('('))
            {
                out.push(Violation {
                    rule: Rule::L6,
                    file: file.to_string(),
                    line: t.line,
                    what: format!(
                        "Instant::now() in ring hot function `{fn_name}`; hoist it out of the \
                         per-frame path (or use hts_metrics::now_nanos, which is free when \
                         metrics are off)"
                    ),
                });
                continue;
            }
            // `Vec::new()` / `String::new()` / ... — a heap allocation
            // per frame.
            let alloc_new = t.is_ident("new")
                && k >= 3
                && toks[k - 1].is(':')
                && toks[k - 2].is(':')
                && ALLOC_TYPES.contains(&toks[k - 3].text)
                && next.is_some_and(|n| n.is('('));
            let alloc_macro = ALLOC_MACROS.contains(&t.text) && next.is_some_and(|n| n.is('!'));
            let alloc_call = ALLOC_CALLS.contains(&t.text) && next.is_some_and(|n| n.is('('));
            if alloc_new || alloc_macro || alloc_call {
                let shown = if alloc_macro {
                    format!("{}!", t.text)
                } else if alloc_new {
                    format!("{}::new", toks[k - 3].text)
                } else {
                    t.text.to_string()
                };
                out.push(Violation {
                    rule: Rule::L6,
                    file: file.to_string(),
                    line: t.line,
                    what: format!(
                        "`{shown}` allocates in ring hot function `{fn_name}`; reuse a \
                         caller-provided buffer instead"
                    ),
                });
            }
        }
        i = close + 1;
    }
}

/// Pure-counter modules where `Relaxed` is the designed default: every
/// atomic there is an independent statistic (no cross-variable ordering
/// to argue), so a justification per counter bump would be noise, not
/// signal. Fences are still flagged even here.
const L7_COUNTER_FILES: [&str; 2] = ["crates/metrics/src/lib.rs", "crates/metrics/src/hist.rs"];

fn rule_l7(file: &str, toks: &[Tok<'_>], comments: &[Comment], out: &mut Vec<Violation>) {
    let counter_file = L7_COUNTER_FILES.contains(&file);
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // `use ... Ordering::Relaxed;` names an ordering without using
        // one — skip import statements wholesale.
        if t.is_ident("use") {
            while i < toks.len() && !toks[i].is(';') {
                i += 1;
            }
            continue;
        }
        // `Ordering::Relaxed` / `atomic::Ordering::Relaxed` — anything
        // path-qualified. Relaxed gives *no* inter-thread ordering, so
        // each site must say why none is needed.
        let relaxed = t.is_ident("Relaxed") && i >= 2 && toks[i - 1].is(':') && toks[i - 2].is(':');
        // `fence(..)` / `compiler_fence(..)`: ordering decoupled from
        // any one access is the easiest kind to break by refactoring.
        let fence = (t.is_ident("fence") || t.is_ident("compiler_fence"))
            && toks.get(i + 1).is_some_and(|n| n.is('('));
        if (relaxed && !counter_file) || fence {
            let justified = comments.iter().any(|c| {
                c.text.contains("ordering:") && c.end_line <= t.line && c.end_line + 2 >= t.line
            });
            if !justified {
                let what = if fence {
                    format!(
                        "`{}` without a `// ordering:` comment; state what it pairs with",
                        t.text
                    )
                } else {
                    "`Ordering::Relaxed` without a `// ordering:` comment arguing why \
                     no ordering is needed"
                        .to_string()
                };
                out.push(Violation {
                    rule: Rule::L7,
                    file: file.to_string(),
                    line: t.line,
                    what,
                });
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<(Rule, u32)> {
        check_file("x.rs", src)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn l1_flags_panics_and_unwraps() {
        let src = "fn f() {\n    let x = y.unwrap();\n    panic!(\"no\");\n}\n";
        assert_eq!(rules_of(src), vec![(Rule::L1, 2), (Rule::L1, 3)]);
    }

    #[test]
    fn l1_skips_unwrap_or_variants() {
        let src = "fn f() { let x = y.unwrap_or(0); let z = y.unwrap_or_else(|| 1); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn test_scope_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n\
                   fn f() { y.unwrap(); }\n";
        assert_eq!(rules_of(src), vec![(Rule::L1, 6)]);
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let src = "fn f() {\n    // lint: allow(sleep): startup backoff\n    \
                   thread::sleep(d);\n    thread::sleep(d);\n}\n";
        assert_eq!(rules_of(src), vec![(Rule::L2, 4)]);
    }

    #[test]
    fn l3_flags_guard_across_flush_but_not_after_block() {
        let src = "fn f() {\n    {\n        let mut q = shared.lock();\n        \
                   stream.flush();\n    }\n    stream.flush();\n}\n";
        assert_eq!(rules_of(src), vec![(Rule::L3, 4)]);
    }

    #[test]
    fn l3_respects_explicit_drop() {
        let src = "fn f() {\n    let q = m.lock();\n    drop(q);\n    stream.write_all(b);\n}\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn l4_flags_catch_all_in_message_match_only() {
        let src = "fn f(m: M) {\n    match m {\n        Message::Ring(f) => a(),\n        \
                   _ => b(),\n    }\n    match n {\n        Other::X => c(),\n        _ => d(),\n    }\n}\n";
        assert_eq!(rules_of(src), vec![(Rule::L4, 4)]);
    }

    #[test]
    fn l4_flags_wrapped_catch_all() {
        let src = "fn f(m: R) {\n    match m {\n        Ok(Message::Ring(f)) => a(),\n        \
                   Ok(_) => b(),\n        Err(e) => c(e),\n    }\n}\n";
        assert_eq!(rules_of(src), vec![(Rule::L4, 4)]);
    }

    #[test]
    fn l6_flags_clocks_and_allocs_in_hot_functions_only() {
        let src =
            "fn ring_writer() {\n    let d = Instant::now();\n    let mut b = Vec::new();\n    \
                   let s = format!(\"x\");\n    let v = slice.to_vec();\n}\n\
                   fn cold_path() {\n    let d = Instant::now();\n    let b = Vec::new();\n}\n";
        assert_eq!(
            rules_of(src),
            vec![(Rule::L6, 2), (Rule::L6, 3), (Rule::L6, 4), (Rule::L6, 5)]
        );
    }

    #[test]
    fn l6_permits_metrics_helpers_and_nonallocating_code() {
        let src = "fn next_frame() {\n    let t0 = hts_metrics::now_nanos();\n    \
                   hts_metrics::histogram!(\"hts_x\").record(t0);\n    q.pop_front();\n}\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn l7_requires_ordering_justification() {
        let bad = "fn f() {\n    x.load(Ordering::Relaxed);\n    fence(Ordering::SeqCst);\n}\n";
        assert_eq!(rules_of(bad), vec![(Rule::L7, 2), (Rule::L7, 3)]);
        let good = "fn f() {\n    // ordering: a pure counter, read only for stats\n    \
                    x.load(Ordering::Relaxed);\n    \
                    fence(Ordering::Release); // ordering: pairs with the Acquire in g\n}\n";
        assert!(rules_of(good).is_empty());
    }

    #[test]
    fn l7_leaves_non_relaxed_orderings_alone() {
        let src = "fn f() { x.store(1, Ordering::Release); y.load(Ordering::Acquire); }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn l7_skips_imports_and_counter_files() {
        let src =
            "use std::sync::atomic::Ordering::Relaxed;\nfn f() { x.load(Ordering::Relaxed); }\n";
        // The import never fires; the use site does — except in the
        // whitelisted pure-counter modules.
        assert_eq!(rules_of(src), vec![(Rule::L7, 2)]);
        assert!(check_file("crates/metrics/src/lib.rs", src).is_empty());
        // Fences need a justification even in counter files.
        let fenced = "fn f() { fence(Ordering::SeqCst); }";
        assert_eq!(check_file("crates/metrics/src/hist.rs", fenced).len(), 1);
    }

    #[test]
    fn l5_requires_safety_comment() {
        let bad = "fn f() {\n    unsafe { g(); }\n}\n";
        assert_eq!(rules_of(bad), vec![(Rule::L5, 2)]);
        let good = "fn f() {\n    // SAFETY: g has no preconditions here\n    unsafe { g(); }\n}\n";
        assert!(rules_of(good).is_empty());
    }
}
