//! `hts-check`: a protocol-safety static analysis pass for the hts
//! workspace, with a committed lint-baseline ratchet.
//!
//! Three of the first five PRs of this repository fixed concurrency and
//! error-handling bugs that a project-specific static check would have
//! caught before review: a `thread::sleep` stalling the ring writer, an
//! `assert!` where an `io::Error` belonged, and a silent catch-all match
//! arm hiding an alive-map recovery bug. This crate is that check — a
//! dependency-free, token-level linter enforcing seven rules over the
//! protocol crates (`crates/{types,core,net,wal,sim,metrics}`):
//!
//! * **L1 `no_panic`** — no `unwrap`/`expect`/`panic!`/`assert!`-family
//!   in non-test protocol code; errors must propagate.
//! * **L2 `no_sleep`** — no `thread::sleep` (event loops, writers and
//!   client attempt paths must block on condvars or deadlines).
//! * **L3 `guard_across_io`** — no lock guard bound live across a
//!   `write`/`flush`/`sync` call in the same block.
//! * **L4 `message_catch_all`** — no `_ =>` catch-all when matching on
//!   [`Message`] wire variants; every variant is dispatched by name.
//! * **L5 `unsafe_safety`** — every `unsafe` block carries a
//!   `// SAFETY:` comment.
//! * **L6 `ring_hot_loop`** — no `Instant::now()` or allocation
//!   constructors inside the per-frame ring hot functions (the
//!   `hts_metrics` helpers are alloc-free and exempt by construction).
//! * **L7 `atomic_ordering`** — every `Ordering::Relaxed` outside the
//!   pure-counter metrics modules and every fence carries a
//!   `// ordering:` comment, and every protocol-crate file constructing
//!   atomics is covered by an `hts-mc` model (or explicitly exempted)
//!   in the `mc-models.toml` manifest (see [`manifest`]).
//!
//! Existing debt is frozen in `lint-baseline.toml` (see [`baseline`]):
//! new violations fail CI, fixed ones shrink the ratchet. Run with
//! `cargo run -p hts-check -- --ci`.
//!
//! The companion *runtime* checks — the lock-order race detector the CI
//! `lockorder` job enables, and the `hts-mc` model checker the
//! `modelcheck` job runs — live in `hts_types::sync` (behind the
//! `lock-order` feature) and `crates/mc`.

pub mod baseline;
pub mod lexer;
pub mod manifest;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use baseline::{diff, Baseline, Diff};
pub use rules::{check_file, Rule, Violation};

/// The protocol crates the workspace lint covers. `metrics` is included
/// because its primitives sit on the data path of every other crate.
pub const PROTOCOL_CRATES: [&str; 6] = ["types", "core", "net", "wal", "sim", "metrics"];

/// Lints `crates/<crate>/src/**/*.rs` under `root` for each named crate.
///
/// Returns violations sorted by file, then line. Paths in the result are
/// `root`-relative with `/` separators (stable across platforms, and what
/// the baseline file keys on).
///
/// # Errors
///
/// Propagates I/O errors from walking or reading sources; a named crate
/// without a `src/` directory is an error (a silently skipped crate would
/// make an empty report look clean).
pub fn check_workspace(root: &Path, crates: &[&str]) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    let mut atomic_files: std::collections::BTreeMap<String, Vec<u32>> = Default::default();
    for krate in crates {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("crate source dir not found: {}", src.display()),
            ));
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let text = fs::read_to_string(&path)?;
            violations.extend(check_file(&rel, &text));
            let ctors = manifest::atomic_ctor_lines(&text);
            if !ctors.is_empty() {
                atomic_files.insert(rel, ctors);
            }
        }
    }
    violations.extend(manifest::check_coverage(root, &atomic_files)?);
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(violations)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_crate_is_an_error_not_a_clean_report() {
        let err = check_workspace(Path::new("/nonexistent"), &["nope"]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
