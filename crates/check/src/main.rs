//! The `hts-check` CLI: lint the workspace, diff against the committed
//! baseline, optionally rewrite it.
//!
//! ```text
//! hts-check [--ci] [--list] [--update-baseline]
//!           [--root DIR] [--baseline FILE] [--crates a,b,c]
//! ```
//!
//! Exit codes: 0 clean (or within baseline), 1 new violations (or, with
//! `--ci`, a missing/corrupt baseline), 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use hts_check::{check_workspace, diff, Baseline, Rule, PROTOCOL_CRATES};

struct Args {
    ci: bool,
    list: bool,
    update: bool,
    root: PathBuf,
    baseline: Option<PathBuf>,
    crates: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ci: false,
        list: false,
        update: false,
        root: PathBuf::from("."),
        baseline: None,
        crates: PROTOCOL_CRATES.iter().map(|s| s.to_string()).collect(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ci" => args.ci = true,
            "--list" => args.list = true,
            "--update-baseline" => args.update = true,
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?))
            }
            "--crates" => {
                args.crates = it
                    .next()
                    .ok_or("--crates needs a value")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect()
            }
            "--help" | "-h" => {
                return Err("usage: hts-check [--ci] [--list] [--update-baseline] \
                            [--root DIR] [--baseline FILE] [--crates a,b,c]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.toml"));
    let crates: Vec<&str> = args.crates.iter().map(String::as_str).collect();
    let violations = match check_workspace(&args.root, &crates) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("hts-check: {e}");
            return ExitCode::from(2);
        }
    };

    if args.update {
        let base = Baseline::from_violations(&violations);
        if let Err(e) = std::fs::write(&baseline_path, base.to_toml()) {
            eprintln!("hts-check: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "hts-check: baseline rewritten ({} sites) -> {}",
            violations.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let base = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "hts-check: corrupt baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(if args.ci { 1 } else { 2 });
            }
        },
        Err(_) if !args.ci => {
            println!(
                "hts-check: no baseline at {} (every violation reported; \
                 freeze with --update-baseline)",
                baseline_path.display()
            );
            Baseline::default()
        }
        Err(e) => {
            eprintln!(
                "hts-check: --ci requires a committed baseline, cannot read {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(1);
        }
    };

    if args.list {
        for v in &violations {
            println!("{v}");
        }
    }

    let d = diff(&violations, &base);
    for rule in Rule::ALL {
        let have = violations.iter().filter(|v| v.rule == rule).count();
        println!(
            "hts-check: {rule} ({}): {have} site(s), {} baselined",
            rule.name(),
            base.total(rule)
        );
    }
    for (rule, file, allowed, actual) in &d.improvements {
        println!(
            "hts-check: ratchet can tighten: {file} [{rule}] {actual} < {allowed} baselined \
             (run --update-baseline and commit)"
        );
    }
    if d.regressions.is_empty() {
        println!("hts-check: OK — no violations beyond the baseline");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "hts-check: {} violation(s) beyond the baseline:",
            d.regressions.len()
        );
        for v in &d.regressions {
            eprintln!("  {v}");
        }
        eprintln!(
            "hts-check: fix the new sites (or, for justified exceptions, add \
             `// lint: allow({}): reason`)",
            d.regressions.first().map_or("rule", |v| v.rule.name())
        );
        ExitCode::from(1)
    }
}
