// Known-bad fixture for the hts-check linter. NEVER compiled — the
// linter lexes it as text. Exact per-rule counts and line numbers are
// asserted by tests/linter.rs: keep edits in sync with it.

pub enum Message {
    A,
    B(u32),
}

// --- L1: panics in protocol code -----------------------------------

pub fn l1_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // line 13: L1
}

pub fn l1_expect(x: Option<u32>) -> u32 {
    x.expect("always here") // line 17: L1
}

pub fn l1_macros(a: u32) {
    if a == 0 {
        panic!("boom"); // line 22: L1
    }
    assert!(a > 0); // line 24: L1
    assert_eq!(a, a); // line 25: L1
    unreachable!(); // line 26: L1
}

pub fn l1_exempt(a: u32) {
    debug_assert!(a > 0); // debug_assert is allowed: stripped in release
    let unwrap = a; // an ident named `unwrap` is not a call
    let _ = unwrap;
}

pub fn l1_suppressed(x: Option<u32>) -> u32 {
    // lint: allow(panic): fixture-sanctioned invariant
    x.unwrap() // covered by the allow comment above
}

// --- L2: sleeps ----------------------------------------------------

pub fn l2_sleep() {
    std::thread::sleep(std::time::Duration::from_millis(1)); // line 43: L2
}

// --- L3: guard live across a blocking write ------------------------

pub fn l3_guard_across_write(
    m: &std::sync::Mutex<Vec<u8>>,
    w: &mut impl std::io::Write,
) -> std::io::Result<()> {
    let guard = m.lock().unwrap_or_else(|p| p.into_inner());
    w.write_all(&guard)?; // line 53: L3 (guard still live)
    Ok(())
}

pub fn l3_guard_dropped(
    m: &std::sync::Mutex<Vec<u8>>,
    w: &mut impl std::io::Write,
) -> std::io::Result<()> {
    let guard = m.lock().unwrap_or_else(|p| p.into_inner());
    let data = guard.clone();
    drop(guard); // released before the write: clean
    w.write_all(&data)?;
    Ok(())
}

// --- L4: catch-all over Message ------------------------------------

pub fn l4_catch_all(m: &Message) -> u32 {
    match m {
        Message::A => 1,
        _ => 0, // line 73: L4
    }
}

pub fn l4_exhaustive(m: &Message) -> u32 {
    match m {
        Message::A => 1,
        Message::B(n) => *n, // every variant by name: clean
    }
}

// --- L5: unsafe without SAFETY -------------------------------------

pub fn l5_unsafe_without_safety(p: *const u32) -> u32 {
    unsafe { *p } // line 87: L5
}

pub fn l5_unsafe_with_safety(p: &u32) -> u32 {
    // SAFETY: a shared reference is always valid to read.
    unsafe { *(p as *const u32) }
}

// --- test scope: everything below is exempt ------------------------

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        std::thread::sleep(std::time::Duration::from_millis(0));
    }
}
