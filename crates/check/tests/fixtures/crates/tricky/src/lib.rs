// Lexer-adversarial fixture: would-be violations hidden inside raw
// strings, nested block comments and raw identifiers must NOT count,
// while the one real violation AFTER all of them must still be found on
// the right line. NEVER compiled — the linter lexes it as text. Exact
// counts and line numbers are asserted by tests/linter.rs.

pub fn hidden_in_literals() {
    let a = r#"x.unwrap() panic!("no") thread::sleep(d) fence(o)"#;
    let b = r##"nested "#" hashes: assert!(Ordering::Relaxed)"##;
    let c = "escaped quote \" then x.unwrap() \" done";
    let d = b"byte panic!(\"s\")";
    let _ = (a, b, c, d);
}

/* a nested /* block comment holding x.unwrap() and
   thread::sleep(d) and /* deeper: assert!(false) */ more */
   still one single comment */

pub fn r#match(x: Option<u32>) -> Option<u32> {
    // A raw identifier must stay one token: split as `r`, `#`, `match`
    // it would derail brace tracking and invent keywords.
    let r#unsafe = x;
    r#unsafe
}

pub fn multi_line_strings_keep_lines_honest() -> (&'static str, &'static str) {
    let a = "first
        second";
    let b = "continued \
        tail";
    (a, b)
}

pub fn the_real_violation(x: Option<u32>) -> u32 {
    x.unwrap() // line 35: the file’s single L1 — found despite the above
}
