//! End-to-end linter tests over the known-bad fixture tree, plus the
//! baseline-ratchet behavior and a self-check of the real workspace
//! against its committed `lint-baseline.toml`.

use std::path::{Path, PathBuf};

use hts_check::{check_workspace, diff, Baseline, Rule, Violation};

/// Root of the fixture tree (`fixtures/crates/bad/src/lib.rs`).
fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn fixture_violations() -> Vec<Violation> {
    check_workspace(&fixtures_root(), &["bad"]).expect("fixture tree exists")
}

fn count(violations: &[Violation], rule: Rule) -> usize {
    violations.iter().filter(|v| v.rule == rule).count()
}

#[test]
fn fixture_counts_are_exact() {
    let v = fixture_violations();
    assert_eq!(count(&v, Rule::L1), 6, "L1 sites: {v:?}");
    assert_eq!(count(&v, Rule::L2), 1, "L2 sites: {v:?}");
    assert_eq!(count(&v, Rule::L3), 1, "L3 sites: {v:?}");
    assert_eq!(count(&v, Rule::L4), 1, "L4 sites: {v:?}");
    assert_eq!(count(&v, Rule::L5), 1, "L5 sites: {v:?}");
    assert_eq!(v.len(), 10);
}

#[test]
fn violations_carry_file_and_line() {
    let v = fixture_violations();
    let lines: Vec<(Rule, u32)> = v.iter().map(|v| (v.rule, v.line)).collect();
    // One witness per rule, pinned to the fixture's commented lines.
    assert!(lines.contains(&(Rule::L1, 13)), "unwrap line: {lines:?}");
    assert!(lines.contains(&(Rule::L2, 43)), "sleep line: {lines:?}");
    assert!(lines.contains(&(Rule::L3, 53)), "guard line: {lines:?}");
    assert!(lines.contains(&(Rule::L4, 73)), "catch-all line: {lines:?}");
    assert!(lines.contains(&(Rule::L5, 87)), "unsafe line: {lines:?}");
    for violation in &v {
        assert_eq!(violation.file, "crates/bad/src/lib.rs");
        let shown = violation.to_string();
        assert!(
            shown.starts_with("crates/bad/src/lib.rs:"),
            "display leads with file:line: {shown}"
        );
    }
}

#[test]
fn test_scope_and_allow_comments_are_exempt() {
    let v = fixture_violations();
    // The `#[cfg(test)]` module sleeps and unwraps on lines > 95; the
    // allow-comment-covered unwrap sits on line 37. None may appear.
    assert!(
        v.iter().all(|v| v.line < 95),
        "test-scope code leaked into the report: {v:?}"
    );
    assert!(
        !v.iter().any(|v| (36..=38).contains(&v.line)),
        "allow-comment suppression failed: {v:?}"
    );
}

/// The lexer-adversarial fixture: violations spelled out inside raw
/// strings (hash-matched), nested block comments, escaped quotes and
/// byte strings never count; raw identifiers (`r#match`) neither invent
/// keywords nor derail brace tracking; and multi-line strings (escaped
/// newlines included) keep later line numbers honest — the file's one
/// real violation is found, on exactly its line.
#[test]
fn tricky_lexing_neither_hides_nor_invents_violations() {
    let v = check_workspace(&fixtures_root(), &["tricky"]).expect("fixture tree exists");
    assert_eq!(v.len(), 1, "exactly one real violation: {v:?}");
    assert_eq!(v[0].rule, Rule::L1);
    assert_eq!(v[0].file, "crates/tricky/src/lib.rs");
    assert_eq!(v[0].line, 35, "line drift through the literals: {v:?}");
}

#[test]
fn baseline_freezes_and_ratchets() {
    let v = fixture_violations();
    let frozen = Baseline::from_violations(&v);

    // Frozen debt: everything allowed, nothing to report.
    let d = diff(&v, &frozen);
    assert!(d.regressions.is_empty());
    assert!(d.improvements.is_empty());

    // A new violation in the same file regresses the whole (rule, file)
    // group past its count.
    let mut more = v.clone();
    more.push(Violation {
        rule: Rule::L1,
        file: "crates/bad/src/lib.rs".to_string(),
        line: 999,
        what: "synthetic regression".to_string(),
    });
    let d = diff(&more, &frozen);
    assert_eq!(d.regressions.len(), 7, "the grown L1 group is re-reported");
    assert!(d.regressions.iter().all(|r| r.rule == Rule::L1));

    // Fixing sites leaves improvements: the ratchet can tighten.
    let fewer: Vec<Violation> = v.iter().filter(|x| x.rule != Rule::L2).cloned().collect();
    let d = diff(&fewer, &frozen);
    assert!(d.regressions.is_empty());
    assert_eq!(d.improvements.len(), 1);
    let (rule, _, allowed, actual) = &d.improvements[0];
    assert_eq!((*rule, *allowed, *actual), (Rule::L2, 1, 0));
}

#[test]
fn baseline_toml_roundtrips() {
    let v = fixture_violations();
    let frozen = Baseline::from_violations(&v);
    let text = frozen.to_toml();
    let back = Baseline::parse(&text).expect("own output parses");
    for rule in Rule::ALL {
        assert_eq!(frozen.total(rule), back.total(rule), "{rule} differs");
    }
    assert!(Baseline::parse("version = 1\n[L9]\n").is_err());
    assert!(Baseline::parse("not toml at all [").is_err());
}

/// The real workspace must be clean against its committed baseline —
/// the same check CI's `lint` job runs, kept honest from the test suite.
#[test]
fn workspace_is_within_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/check sits two levels below the workspace root")
        .to_path_buf();
    let baseline_path = root.join("lint-baseline.toml");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", baseline_path.display()));
    let baseline = Baseline::parse(&text).expect("committed baseline parses");
    let violations = check_workspace(&root, &hts_check::PROTOCOL_CRATES).expect("workspace lints");
    let d = diff(&violations, &baseline);
    assert!(
        d.regressions.is_empty(),
        "new lint violations beyond lint-baseline.toml: {:#?}",
        d.regressions
    );
}
